//! Fidelity and property-based tests spanning the simulator, planner,
//! placement controller and executor.
//!
//! The planner only works if its DAG model predicts reality; these tests
//! compare predictions against event-accurate execution across many
//! plans, and hammer structural invariants with random workloads drawn
//! from the deterministic `rb_core::Prng` (fixed seeds, fixed case
//! counts, fully offline).

use rubberband::prelude::*;
use rubberband::rb_cloud::catalog::P3_8XLARGE;
use rubberband::rb_core::Prng;
use rubberband::rb_hpo::{Dim, ShaParams};
use rubberband::rb_train::task::resnet101_cifar10;

fn cloud() -> CloudProfile {
    CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15))
}

fn space() -> SearchSpace {
    SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .build()
        .unwrap()
}

/// Prediction vs execution across a spread of hand-picked plans: the DAG
/// model must stay within 12% of event-accurate execution on both JCT
/// and cost (Table 2's fidelity claim, across more plans than the paper
/// prints).
#[test]
fn simulator_tracks_executor_across_plans() {
    let task = resnet101_cifar10();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    let spec = ShaParams::new(16, 1, 20).with_eta(2).generate().unwrap();
    let sim = Simulator::new(physics.clone(), cloud());
    let plans = [
        vec![16, 16, 16, 16, 16],
        vec![16, 8, 4, 4, 4],
        vec![32, 16, 8, 4, 4],
        vec![4, 4, 4, 4, 4],
        vec![8, 16, 8, 8, 4],
    ];
    for p in plans {
        let plan = AllocationPlan::new(p.clone());
        let pred = sim.predict(&spec, &plan).unwrap();
        let report =
            rubberband::execute(&spec, &plan, &task, &physics, &cloud(), &space(), 5).unwrap();
        let jct_err =
            (report.jct.as_secs_f64() - pred.jct.as_secs_f64()).abs() / pred.jct.as_secs_f64();
        let cost_err = (report.total_cost().as_dollars() - pred.cost.as_dollars()).abs()
            / pred.cost.as_dollars().max(1e-9);
        assert!(jct_err < 0.12, "plan {p:?}: JCT err {jct_err}");
        assert!(cost_err < 0.12, "plan {p:?}: cost err {cost_err}");
    }
}

/// Per-function billing never exceeds per-instance billing for the same
/// execution: functions only pay for busy GPU-time, which is a subset of
/// held GPU-time.
#[test]
fn per_function_is_never_dearer_than_per_instance() {
    let task = resnet101_cifar10();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    let spec = ShaParams::new(8, 1, 8).generate().unwrap();
    for plan in [vec![8, 8, 8, 8], vec![8, 4, 4, 4], vec![16, 8, 8, 8]] {
        let run = |per_function: bool| {
            let mut c = cloud();
            if per_function {
                c.pricing = c.pricing.with_per_function_billing();
            }
            rubberband::execute(
                &spec,
                &AllocationPlan::new(plan.clone()),
                &task,
                &physics,
                &c,
                &space(),
                2,
            )
            .unwrap()
        };
        let pi = run(false);
        let pf = run(true);
        assert!(
            pf.compute_cost <= pi.compute_cost,
            "plan {plan:?}: {} > {}",
            pf.compute_cost,
            pi.compute_cost
        );
    }
}

/// SHA generation invariants for arbitrary valid parameters: the
/// work ladder always starts with `n` trials doing `min(r, R)` work,
/// trial counts shrink by η (flooring at one, merged at the tail),
/// per-stage work grows by η until the remainder stage, and the
/// survivor ends at exactly `R`.
#[test]
fn sha_specs_are_structurally_sound() {
    let mut rng = Prng::seed_from_u64(0xF1DE_0001);
    for _ in 0..64 {
        let n = 1 + rng.next_below(299) as u32;
        let r = 1 + rng.next_below(7);
        let mult = 1 + rng.next_below(199);
        let eta = 2 + rng.next_below(3) as u32;
        let big_r = r * mult;
        let spec = ShaParams {
            n,
            r,
            big_r,
            eta,
            max_stages: None,
        }
        .generate()
        .unwrap();
        let stages: Vec<(u32, u64)> = spec.stages().map(|s| (s.num_trials, s.iters)).collect();
        assert_eq!(stages[0].0, n);
        if n == 1 {
            // A single trial collapses into one stage doing all of R.
            assert_eq!(stages.len(), 1);
            assert_eq!(stages[0].1, big_r);
        } else {
            assert_eq!(stages[0].1, r.min(big_r));
        }
        // The survivor's cumulative work is exactly R.
        assert_eq!(spec.max_iters(), big_r);
        // Trial counts divide by η (clamped at 1) stage over stage.
        for w in stages.windows(2) {
            assert_eq!(w[1].0, (w[0].0 / eta).max(1));
        }
        // Work grows by η each stage except the final remainder stage
        // (and single-trial merged tails).
        for (k, w) in stages.windows(2).enumerate() {
            let is_final = k + 2 == stages.len();
            if !is_final && w[1].0 > 1 {
                assert_eq!(w[1].1, w[0].1 * u64::from(eta));
            }
        }
    }
}

/// Fair-ladder arithmetic: `round_down_fair` always yields a fair,
/// not-larger allocation, and decrementing always terminates at 1.
#[test]
fn fair_ladder_invariants() {
    let mut rng = Prng::seed_from_u64(0xF1DE_0002);
    for _ in 0..64 {
        let alloc = 1 + rng.next_below(1999) as u32;
        let trials = 1 + rng.next_below(299) as u32;
        let fair = AllocationPlan::round_down_fair(alloc, trials);
        assert!(fair >= 1 && fair <= alloc.max(1));
        assert!(fair % trials == 0 || trials % fair == 0);
        let mut a = alloc;
        let mut steps = 0;
        while let Some(next) = AllocationPlan::decrement_fair(a, trials) {
            assert!(next < a);
            assert!(next % trials == 0 || trials % next == 0);
            a = next;
            steps += 1;
            assert!(steps < 4000);
        }
        assert_eq!(a, 1);
    }
}

/// Simulated plans: prediction is deterministic, positive, and
/// per-function cost never exceeds per-instance cost for identical
/// noise-free workloads.
#[test]
fn prediction_invariants() {
    let mut rng = Prng::seed_from_u64(0xF1DE_0003);
    let task = resnet101_cifar10();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    for _ in 0..64 {
        let num_stages = 1 + rng.next_below(4) as usize;
        let stage_gpus: Vec<u32> = (0..num_stages)
            .map(|_| 1 + rng.next_below(39) as u32)
            .collect();
        let trials0 = 1 + rng.next_below(31) as u32;
        let units = 1 + rng.next_below(11);
        // Build a shrinking spec compatible with the plan length.
        let mut stages = Vec::new();
        let mut t = trials0;
        for _ in 0..stage_gpus.len() {
            stages.push((t, units));
            t = (t / 2).max(1);
        }
        let spec = ExperimentSpec::from_stages(&stages).unwrap();
        let plan = AllocationPlan::new(stage_gpus.clone());
        let mk = |per_function: bool| {
            let mut c = cloud();
            if per_function {
                c.pricing = c.pricing.with_per_function_billing();
            }
            Simulator::new(physics.clone(), c).with_config(SimConfig {
                samples: 4,
                seed: 99,
                sync_overhead_secs: 1.0,
            })
        };
        let sim = mk(false);
        let a = sim.predict(&spec, &plan).unwrap();
        let b = sim.predict(&spec, &plan).unwrap();
        assert_eq!(a, b);
        assert!(a.jct > SimDuration::ZERO);
        assert!(a.cost > Cost::ZERO);
        let pf = mk(true).predict(&spec, &plan).unwrap();
        assert!(pf.cost <= a.cost, "pf {} > pi {}", pf.cost, a.cost);
    }
}

/// The placement controller always produces valid, fully-assigned,
/// locality-preserving plans when capacity suffices.
#[test]
fn placement_controller_invariants() {
    use rubberband::rb_core::TrialId;
    use rubberband::rb_placement::{ClusterState, PlacementController};
    use std::collections::BTreeMap;

    let mut rng = Prng::seed_from_u64(0xF1DE_0004);
    for _ in 0..64 {
        let len = 1 + rng.next_below(11) as usize;
        let allocs: Vec<u32> = (0..len).map(|_| 1 + rng.next_below(8) as u32).collect();
        let gpn = 4;
        // Enough nodes: every trial padded to whole nodes.
        let nodes_needed: u32 = allocs.iter().map(|a| a.div_ceil(gpn)).sum();
        let cluster = ClusterState::with_n_nodes(nodes_needed.max(1), gpn);
        let map: BTreeMap<TrialId, u32> = allocs
            .iter()
            .enumerate()
            .map(|(i, &a)| (TrialId::new(i as u64), a))
            .collect();
        let mut pc = PlacementController::new();
        let diff = pc.update(&map, &cluster).unwrap();
        assert_eq!(diff.started.len(), allocs.len());
        assert!(pc.plan().is_valid_for(&cluster));
        for (&t, &a) in &map {
            assert_eq!(pc.plan().assigned_gpus(t), a);
            // Locality: minimal node count.
            let chunks = pc.plan().get(t).unwrap();
            assert!(chunks.len() as u32 <= a.div_ceil(gpn));
        }
        // Idempotent second call.
        let diff2 = pc.update(&map, &cluster).unwrap();
        assert!(diff2.is_noop());
    }
}

/// Checkpoint round-trips survive arbitrary config values and history
/// lengths.
#[test]
fn checkpoint_roundtrip() {
    use rubberband::rb_core::TrialId;
    use rubberband::rb_train::checkpoint::{decode_trial, encode_trial};
    use rubberband::rb_train::Trial;

    let mut rng = Prng::seed_from_u64(0xF1DE_0005);
    let task = resnet101_cifar10();
    for _ in 0..64 {
        let lr = rng.uniform(1e-6, 1.0);
        let iters = 1 + rng.next_below(59);
        let seed = rng.next_below(1000);
        let mut trial = Trial::new(TrialId::new(seed), Config::new().with_f64("lr", lr), seed);
        trial.start().unwrap();
        for _ in 0..iters {
            trial.advance(&task, 1).unwrap();
        }
        let snap = decode_trial(&encode_trial(&trial)).unwrap();
        assert_eq!(snap.iters_done, iters);
        assert_eq!(snap.history.len() as u64, iters);
        assert_eq!(snap.config, trial.config);
    }
}

/// Learning curves are monotone (noise-free) and bounded for random
/// configurations.
#[test]
fn learning_curves_are_sane() {
    let mut rng = Prng::seed_from_u64(0xF1DE_0006);
    let task = resnet101_cifar10();
    for _ in 0..64 {
        let lr = rng.uniform(1e-6, 10.0);
        let wd = rng.uniform(1e-7, 1e-1);
        let cfg = Config::new()
            .with_f64("lr", lr)
            .with_f64("weight_decay", wd);
        let mut prev = 0.0;
        for i in [0u64, 1, 2, 5, 10, 25, 50, 100] {
            let a = task.clean_accuracy(&cfg, i);
            assert!((0.0..=1.0).contains(&a));
            assert!(a + 1e-12 >= prev, "dip at {i}: {a} < {prev}");
            prev = a;
        }
    }
}

/// The executor survives arbitrary small workloads: random shrinking
/// specs and fair-ish plans always run to completion with coherent
/// reports and traces.
#[test]
fn executor_handles_random_workloads() {
    let mut rng = Prng::seed_from_u64(0xF1DE_0007);
    let task = resnet101_cifar10();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    for _ in 0..24 {
        let trials0 = 2 + rng.next_below(10) as u32;
        let units = 1 + rng.next_below(3);
        let halvings = 1 + rng.next_below(3) as usize;
        let gpus0 = 1 + rng.next_below(16) as u32;
        let seed = rng.next_below(1000);
        let mut stages = Vec::new();
        let mut t = trials0;
        let mut g = gpus0;
        let mut plan = Vec::new();
        for _ in 0..=halvings {
            stages.push((t, units));
            plan.push(rubberband::rb_sim::AllocationPlan::round_down_fair(
                g.max(1),
                t,
            ));
            t = (t / 2).max(1);
            g = (g / 2).max(1);
        }
        let spec = ExperimentSpec::from_stages(&stages).unwrap();
        let plan = AllocationPlan::new(plan);
        let report =
            rubberband::execute(&spec, &plan, &task, &physics, &cloud(), &space(), seed).unwrap();
        assert!(report.jct > SimDuration::ZERO);
        assert!(report.total_cost() > Cost::ZERO);
        assert_eq!(report.stages.len(), spec.num_stages());
        assert!(report.best_accuracy > 0.0);
        // Trace barriers: one per stage, last at JCT.
        let barriers = report.trace.barriers();
        assert_eq!(barriers.len(), spec.num_stages());
        assert_eq!(
            barriers.last().unwrap().1,
            rubberband::rb_core::SimTime::ZERO + report.jct
        );
        // Deterministic replay.
        let again =
            rubberband::execute(&spec, &plan, &task, &physics, &cloud(), &space(), seed).unwrap();
        assert_eq!(again.jct, report.jct);
        assert_eq!(again.compute_cost, report.compute_cost);
    }
}
