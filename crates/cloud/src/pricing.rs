//! Billing models and the cloud pricing profile.
//!
//! §4.1 of the paper identifies three cost-model parameters that change the
//! optimal allocation plan: *compute price* (per allocable unit, per unit
//! time), *billing granularity* (per-instance vs per-function), and *data
//! price* (per GB of ingress). [`CloudPricing`] bundles all three.

use crate::catalog::{InstanceType, PricingTier};
use rb_core::{Cost, SimDuration};

/// How compute time is converted into dollars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BillingModel {
    /// Traditional IaaS billing: every provisioned instance is charged for
    /// its full lifetime at per-second granularity, with a minimum charge
    /// (60 s on all major providers, §3). Idle time — e.g. an instance held
    /// at a synchronization barrier waiting for stragglers — is still paid
    /// for.
    PerInstance {
        /// Minimum billed duration per provisioned instance, in seconds.
        minimum_secs: u64,
    },
    /// FaaS-style billing: only the resources actually used by a function
    /// (here: a training task) are charged, for exactly the time the
    /// function runs. Approximates the finer-grained offerings discussed in
    /// §4.1; eliminates straggler-holding costs (Fig. 9).
    PerFunction,
}

impl BillingModel {
    /// The standard per-instance model: per-second billing, 60 s minimum.
    pub const PER_INSTANCE: BillingModel = BillingModel::PerInstance { minimum_secs: 60 };

    /// Returns true for the per-instance variant.
    pub fn is_per_instance(&self) -> bool {
        matches!(self, BillingModel::PerInstance { .. })
    }

    /// Applies the model's minimum-charge floor to a billable duration.
    pub fn billable(&self, dur: SimDuration) -> SimDuration {
        match *self {
            BillingModel::PerInstance { minimum_secs } => {
                dur.max(SimDuration::from_secs(minimum_secs))
            }
            BillingModel::PerFunction => dur,
        }
    }
}

/// The complete pricing profile of the target cloud.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudPricing {
    /// The worker instance shape all trials run on. The paper assumes a
    /// homogeneous, user-selected instance pool (§3, §4.4.1).
    pub instance_type: InstanceType,
    /// On-demand or spot pricing.
    pub tier: PricingTier,
    /// Per-instance or per-function billing.
    pub billing: BillingModel,
    /// Price per GB of ingress data movement (e.g. reading the training set
    /// from object storage into each instance). Often zero within a region,
    /// but treated as a parameter (§4.1, Fig. 10).
    pub data_price_per_gb: Cost,
}

impl CloudPricing {
    /// A pricing profile with per-instance billing and free data ingress —
    /// the common case within one EC2 region.
    pub fn on_demand(instance_type: InstanceType) -> Self {
        CloudPricing {
            instance_type,
            tier: PricingTier::OnDemand,
            billing: BillingModel::PER_INSTANCE,
            data_price_per_gb: Cost::ZERO,
        }
    }

    /// Switches to per-function billing.
    pub fn with_per_function_billing(mut self) -> Self {
        self.billing = BillingModel::PerFunction;
        self
    }

    /// Sets the data ingress price per GB.
    pub fn with_data_price(mut self, per_gb: Cost) -> Self {
        self.data_price_per_gb = per_gb;
        self
    }

    /// Switches to spot pricing.
    pub fn with_spot(mut self) -> Self {
        self.tier = PricingTier::Spot;
        self
    }

    /// Switches to an explicit pricing tier (used to price individual
    /// lifetimes when a mid-run market switch leaves part of the fleet
    /// on the old tier).
    pub fn with_tier(mut self, tier: PricingTier) -> Self {
        self.tier = tier;
        self
    }

    /// The hourly price of one instance.
    pub fn instance_hourly(&self) -> Cost {
        self.instance_type.hourly_price(self.tier)
    }

    /// The hourly price of one GPU's share of an instance.
    pub fn gpu_hourly(&self) -> Cost {
        self.instance_type.per_gpu_hourly(self.tier)
    }

    /// The charge for holding one instance for `dur` under per-instance
    /// billing rules (per-second granularity, minimum charge applied).
    pub fn instance_charge(&self, dur: SimDuration) -> Cost {
        self.instance_hourly()
            .per_hour_for(self.billing.billable(dur))
    }

    /// The charge for a function using `gpus` GPUs for `dur` under
    /// per-function billing rules.
    pub fn function_charge(&self, gpus: u32, dur: SimDuration) -> Cost {
        (self.gpu_hourly() * u64::from(gpus)).per_hour_for(dur)
    }

    /// The one-time ingress charge for downloading `gb` gigabytes onto an
    /// instance.
    pub fn ingress_charge(&self, gb: f64) -> Cost {
        self.data_price_per_gb.per_gb_for(gb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::P3_8XLARGE;

    #[test]
    fn minimum_charge_floor_applies_only_per_instance() {
        let m = BillingModel::PER_INSTANCE;
        assert_eq!(
            m.billable(SimDuration::from_secs(10)),
            SimDuration::from_secs(60)
        );
        assert_eq!(
            m.billable(SimDuration::from_secs(120)),
            SimDuration::from_secs(120)
        );
        let f = BillingModel::PerFunction;
        assert_eq!(
            f.billable(SimDuration::from_secs(10)),
            SimDuration::from_secs(10)
        );
    }

    #[test]
    fn instance_charge_for_one_hour_is_list_price() {
        let p = CloudPricing::on_demand(P3_8XLARGE);
        assert_eq!(
            p.instance_charge(SimDuration::from_hours(1)),
            P3_8XLARGE.on_demand_hourly
        );
    }

    #[test]
    fn sub_minute_instances_pay_the_minimum() {
        let p = CloudPricing::on_demand(P3_8XLARGE);
        let one_sec = p.instance_charge(SimDuration::from_secs(1));
        let one_min = p.instance_charge(SimDuration::from_secs(60));
        assert_eq!(one_sec, one_min);
    }

    #[test]
    fn function_charge_scales_with_gpus() {
        let p = CloudPricing::on_demand(P3_8XLARGE).with_per_function_billing();
        let h = SimDuration::from_hours(1);
        assert_eq!(p.function_charge(4, h), P3_8XLARGE.on_demand_hourly);
        assert_eq!(p.function_charge(2, h) * 2, p.function_charge(4, h));
    }

    #[test]
    fn spot_profile_is_cheaper() {
        let od = CloudPricing::on_demand(P3_8XLARGE);
        let spot = CloudPricing::on_demand(P3_8XLARGE).with_spot();
        assert!(spot.instance_hourly() < od.instance_hourly());
    }

    #[test]
    fn ingress_charge_uses_data_price() {
        let p = CloudPricing::on_demand(P3_8XLARGE).with_data_price(Cost::from_dollars(0.01));
        assert_eq!(p.ingress_charge(150.0), Cost::from_dollars(1.50));
        let free = CloudPricing::on_demand(P3_8XLARGE);
        assert_eq!(free.ingress_charge(150.0), Cost::ZERO);
    }
}
