//! The fitted cloud profile.

use rb_cloud::CloudPricing;
use rb_core::{Distribution, SimDuration};

/// Everything the planner/simulator knows about the target cloud: pricing
/// plus the two provider-side latency distributions of §4.1 (scaling
/// latency and instance initialization latency) and the per-instance data
/// ingress volume.
#[derive(Debug, Clone)]
pub struct CloudProfile {
    /// Instance type, billing model, tier, and data price.
    pub pricing: CloudPricing,
    /// Scaling latency: seconds from provisioning request to hand-over
    /// (provider queuing delay).
    pub provision_delay: Distribution,
    /// Instance initialization latency: seconds to install dependencies
    /// and join the cluster after hand-over.
    pub init_latency: Distribution,
    /// Gigabytes of training data each new instance downloads once.
    pub dataset_gb: f64,
    /// Spot interruption rate per instance-hour (extension; zero for
    /// on-demand capacity and for the paper's experiments).
    pub spot_interruptions_per_hour: f64,
}

impl CloudProfile {
    /// A profile with constant provisioning/initialization latencies and no
    /// data ingress.
    pub fn new(pricing: CloudPricing) -> Self {
        CloudProfile {
            pricing,
            provision_delay: Distribution::Constant(30.0),
            init_latency: Distribution::Constant(60.0),
            dataset_gb: 0.0,
            spot_interruptions_per_hour: 0.0,
        }
    }

    /// Sets a constant provisioning delay.
    pub fn with_provision_delay(mut self, d: SimDuration) -> Self {
        self.provision_delay = Distribution::Constant(d.as_secs_f64());
        self
    }

    /// Sets a constant instance-initialization latency.
    pub fn with_init_latency(mut self, d: SimDuration) -> Self {
        self.init_latency = Distribution::Constant(d.as_secs_f64());
        self
    }

    /// Sets the provisioning-delay distribution.
    pub fn with_provision_delay_dist(mut self, d: Distribution) -> Self {
        self.provision_delay = d;
        self
    }

    /// Sets the init-latency distribution.
    pub fn with_init_latency_dist(mut self, d: Distribution) -> Self {
        self.init_latency = d;
        self
    }

    /// Sets the per-instance dataset download volume (GB).
    pub fn with_dataset_gb(mut self, gb: f64) -> Self {
        debug_assert!(gb >= 0.0);
        self.dataset_gb = gb;
        self
    }

    /// Enables spot interruptions at `rate` reclaims per instance-hour.
    pub fn with_spot_interruptions(mut self, rate: f64) -> Self {
        debug_assert!(rate >= 0.0);
        self.spot_interruptions_per_hour = rate;
        self
    }

    /// Mean seconds from requesting an instance to it being usable:
    /// provisioning plus initialization.
    pub fn mean_scale_up_secs(&self) -> f64 {
        self.provision_delay.mean() + self.init_latency.mean()
    }

    /// GPUs per instance (the allocable unit granularity).
    pub fn gpus_per_instance(&self) -> u32 {
        self.pricing.instance_type.gpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_8XLARGE;

    #[test]
    fn builder_chain_sets_fields() {
        let p = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay(SimDuration::from_secs(15))
            .with_init_latency(SimDuration::from_secs(15))
            .with_dataset_gb(150.0);
        assert_eq!(p.provision_delay.mean(), 15.0);
        assert_eq!(p.init_latency.mean(), 15.0);
        assert_eq!(p.dataset_gb, 150.0);
        assert_eq!(p.mean_scale_up_secs(), 30.0);
        assert_eq!(p.gpus_per_instance(), 4);
    }

    #[test]
    fn stochastic_delays_supported() {
        let p = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay_dist(Distribution::lognormal_from_moments(20.0, 8.0));
        assert!((p.provision_delay.mean() - 20.0).abs() < 1e-9);
    }
}
