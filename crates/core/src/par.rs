//! Minimal deterministic fork/join parallelism over index ranges.
//!
//! The prediction engine fans work out across candidate plans and across
//! Monte-Carlo samples. This repo builds with **no external crates**, so
//! instead of rayon we provide one tiny primitive on top of
//! [`std::thread::scope`]: split `0..n` into at most `threads` contiguous
//! chunks, run each chunk on its own scoped thread, and concatenate the
//! chunk outputs in chunk order. Because chunk boundaries depend only on
//! `(n, threads)` and outputs are re-assembled in index order, the result
//! vector is identical for every thread count — determinism is pushed down
//! to the work function, which must derive any randomness from the item
//! index alone (see [`crate::rng::mix_seed`]).

use std::ops::Range;
use std::sync::OnceLock;

/// Number of worker threads to use when the caller asks for "auto" (0):
/// the host's available parallelism, or 1 if that cannot be determined.
/// Cached after the first query — `available_parallelism` is a syscall,
/// and this sits on the per-prediction hot path.
pub fn auto_threads() -> usize {
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Runs `work` over the index range `0..n` split into at most `threads`
/// contiguous chunks and returns the concatenated per-chunk outputs, in
/// index order.
///
/// `work` receives a whole sub-range rather than a single index so that a
/// chunk can reuse scratch buffers across its items; it must return one
/// output per index in the range, in order. `threads == 0` means "auto"
/// ([`auto_threads`]). With one thread (or `n <= 1`) no threads are
/// spawned and `work` runs on the caller's stack.
///
/// The output is bit-identical for every `threads` value as long as
/// `work(range)` equals the corresponding slice of `work(0..n)` — i.e.
/// each item's output depends only on its index.
///
/// # Panics
///
/// Propagates panics from `work`.
///
/// # Examples
///
/// ```
/// use rb_core::par::run_chunked;
/// let f = |r: std::ops::Range<usize>| r.map(|i| i * i).collect::<Vec<_>>();
/// assert_eq!(run_chunked(5, 1, &f), run_chunked(5, 4, &f));
/// ```
pub fn run_chunked<T, F>(n: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let threads = if threads == 0 {
        auto_threads()
    } else {
        threads
    };
    let threads = threads.min(n.max(1));
    if threads <= 1 {
        let out = work(0..n);
        debug_assert_eq!(out.len(), n, "work must yield one output per index");
        return out;
    }
    let chunk = n.div_ceil(threads);
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                scope.spawn(move || work(lo..hi))
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("worker thread panicked"));
        }
    });
    debug_assert_eq!(out.len(), n, "work must yield one output per index");
    out
}

/// Maps `work` over `0..n` item-by-item (no scratch reuse), in parallel.
/// Convenience wrapper over [`run_chunked`] for jobs whose items are
/// self-contained, e.g. planning independent Hyperband brackets.
pub fn map_indexed<T, F>(n: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_chunked(n, threads, |range| range.map(&work).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_preserves_index_order() {
        let square = |r: Range<usize>| r.map(|i| i * i).collect::<Vec<_>>();
        let reference: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            assert_eq!(
                run_chunked(37, threads, square),
                reference,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn empty_and_tiny_ranges_work() {
        let id = |r: Range<usize>| r.collect::<Vec<_>>();
        assert!(run_chunked(0, 4, id).is_empty());
        assert_eq!(run_chunked(1, 4, id), vec![0]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(map_indexed(3, 100, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn auto_threads_is_positive() {
        assert!(auto_threads() >= 1);
    }

    #[test]
    fn map_indexed_matches_sequential() {
        let reference: Vec<u64> = (0..100).map(|i| crate::rng::mix_seed(9, i)).collect();
        assert_eq!(
            map_indexed(100, 7, |i| crate::rng::mix_seed(9, i as u64)),
            reference
        );
    }
}
