//! rb-ctrl: the online adaptation controller (§6's "what if reality
//! disagrees with the plan").
//!
//! RubberBand's plan is compiled *before* the job starts, from a fitted
//! model and cloud profile. This crate closes the loop at runtime:
//!
//! * the [`DriftMonitor`] compares every completed stage's observed
//!   barrier-to-barrier span against the plan's Monte-Carlo per-stage
//!   quantile envelope and maintains a smoothed **drift factor**;
//! * the [`AdaptiveController`] — an executor
//!   [`BarrierHook`](rb_exec::BarrierHook) — re-plans the remaining
//!   stages when drift trips the configured threshold or a stage absorbs
//!   spot preemptions, warm-starting the greedy planner on the residual
//!   spec under a drift-dilated residual deadline;
//! * plan changes are applied only at stage barriers, where every
//!   surviving trial is paused with a fresh checkpoint — the executor's
//!   safe transition point — so adaptation never strands a trial.
//!
//! With no drift and no preemptions the controller never intervenes and
//! execution is bit-identical to the open-loop [`Executor::run`]
//! (rb-exec's contract for a hook that returns `None`).
//!
//! [`Executor::run`]: rb_exec::Executor::run

pub mod controller;
pub mod drift;

pub use controller::{
    AdaptationLog, AdaptiveController, ControllerConfig, MarketChoice, MarketConfig, RefitConfig,
    RefitEvent, ReplanEvent, ReplanTrigger, WatchdogConfig,
};
pub use drift::{DriftConfig, DriftMonitor, DriftObservation};
