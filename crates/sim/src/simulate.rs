//! Monte-Carlo simulation over the execution DAG (Algorithm 1).
//!
//! One *sample* draws a latency for every node, propagates finish times
//! along dependency edges (the vector order is already topological), and
//! reads the job completion time off the sink. Cost is derived from the
//! same sample:
//!
//! * **per-function**: each TRAIN task is billed for its GPUs × duration;
//! * **per-instance**: instance lifetimes are reconstructed from stage
//!   boundaries — instances are handed over when their SCALE task
//!   finishes, and released only at the synchronization barrier of the
//!   last stage that needs them, so time held idle behind stragglers is
//!   paid for (the mechanism behind Fig. 9).
//!
//! Data ingress is billed once per provisioned instance under both models.
//!
//! Prediction exploits the DAG's barrier structure: the stages of a SHA
//! job are fully serialized by their SYNC nodes, so a sampled execution
//! decomposes into independent per-stage samples
//! ([`crate::dag::StageSample`]) that are memoized per stage
//! configuration and shared across every candidate plan the planner
//! evaluates. [`Simulator::sample_run`] and [`Simulator::explain`] still
//! walk the full DAG node by node; both draw the same node latencies from
//! the same counter-derived streams.

use crate::arena::{with_arena, PredictArena, ARENA_COUNTERS};
use crate::counters::CacheCounters;
use crate::dag::{DagTemplate, ExecDag, NodeKind};
use crate::plan::AllocationPlan;
use rb_core::par::{auto_threads, plan_chunks, run_chunked};
use rb_core::{Cost, Prng, Result, SimDuration};
use rb_hpo::ExperimentSpec;
use rb_obs::{CacheStats, RecorderHandle};
use rb_profile::{CloudProfile, ModelProfile};
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monte-Carlo configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of execution samples per prediction. "Configured to be
    /// small by default to ensure plans are generated quickly" (§5).
    pub samples: u32,
    /// Seed of the sampling stream.
    pub seed: u64,
    /// Latency of the end-of-stage evaluation barrier, in seconds.
    pub sync_overhead_secs: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            samples: 20,
            seed: 0xB0A710AD,
            sync_overhead_secs: 1.0,
        }
    }
}

/// One sampled execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSample {
    /// Job completion time in seconds.
    pub jct_secs: f64,
    /// Compute bill.
    pub compute_cost: Cost,
    /// Data-ingress bill.
    pub data_cost: Cost,
}

impl RunSample {
    /// Compute plus data.
    pub fn total_cost(&self) -> Cost {
        self.compute_cost + self.data_cost
    }
}

/// Aggregated prediction for one (spec, plan) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Mean job completion time.
    pub jct: SimDuration,
    /// Standard deviation of JCT across samples, in seconds.
    pub jct_std_secs: f64,
    /// Mean total cost.
    pub cost: Cost,
    /// Standard deviation of cost across samples.
    pub cost_std: Cost,
    /// Samples drawn.
    pub samples: u32,
}

impl Prediction {
    /// True when the predicted JCT fits the deadline.
    pub fn feasible(&self, deadline: SimDuration) -> bool {
        self.jct <= deadline
    }
}

/// Per-stage span quantiles of the Monte-Carlo prediction — the envelope
/// an online drift monitor compares observed stage spans against. The
/// span covers the whole barrier-to-barrier interval (scale-up + init +
/// training + sync), matching what an executor can observe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageQuantiles {
    /// Stage index.
    pub stage: usize,
    /// Samples the quantiles were computed over.
    pub samples: u32,
    /// Mean stage span in seconds.
    pub mean_secs: f64,
    /// 10th-percentile span (nearest rank).
    pub p10_secs: f64,
    /// Median span.
    pub p50_secs: f64,
    /// 90th-percentile span.
    pub p90_secs: f64,
}

/// Per-stage breakdown of a prediction (means over the Monte-Carlo
/// samples) — where the money and time go.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBreakdown {
    /// Stage index.
    pub stage: usize,
    /// Trials running.
    pub trials: u32,
    /// GPUs per trial.
    pub gpus_per_trial: u32,
    /// Instances held.
    pub instances: u32,
    /// Mean wall-clock duration of the stage (scale-up + training +
    /// barrier).
    pub duration: SimDuration,
    /// Mean compute cost attributed to the stage (instances held over its
    /// span, under per-instance billing; train-task GPU-time under
    /// per-function billing).
    pub cost: Cost,
}

/// Execution knobs of the prediction engine — orthogonal to the
/// Monte-Carlo settings in [`SimConfig`], which define *what* is sampled;
/// these define *how fast* it is computed. Results are bit-identical for
/// every combination (the determinism contract of counter-based sample
/// seeds; see [`rb_core::mix_seed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for batch prediction and in-plan sampling;
    /// `0` means "use the host's available parallelism".
    pub threads: usize,
    /// Memoize predictions per (spec, plan) so repeated plans — warm
    /// starts, greedy revisits, repeated planning runs — hit memory
    /// instead of re-simulating.
    pub plan_cache: bool,
    /// Generation cap on the plan-prediction cache, in memoized entries
    /// across all specs. When an insert would push the cache past the
    /// cap, the cache is reset and re-grown; cached values are pure
    /// functions of their keys, so eviction never changes results. `0`
    /// disables the cap. Keeps long-running re-planning loops from
    /// growing memory without bound.
    pub plan_cache_cap: usize,
    /// Reuse the per-spec [`DagTemplate`] — fitted train-task
    /// distributions plus the per-stage Monte-Carlo sample memo — across
    /// candidate plans, instead of rebuilding and re-sampling from scratch
    /// for every prediction.
    pub dag_templates: bool,
    /// Generation cap on each template's stage-sample memo, in entries
    /// (see [`crate::dag::DEFAULT_STAGE_MEMO_CAP`]). `0` disables.
    pub stage_memo_cap: usize,
}

/// Default [`EngineConfig::plan_cache_cap`], in memoized predictions.
pub const DEFAULT_PLAN_CACHE_CAP: usize = 32_768;

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            plan_cache: true,
            plan_cache_cap: DEFAULT_PLAN_CACHE_CAP,
            dag_templates: true,
            stage_memo_cap: crate::dag::DEFAULT_STAGE_MEMO_CAP,
        }
    }
}

impl EngineConfig {
    /// The sequential baseline: one thread, no prediction cache, no
    /// template or stage-sample reuse — every prediction re-fits and
    /// re-samples everything. Kept as the reference the engine is
    /// benchmarked (and bit-compared) against.
    pub fn sequential_baseline() -> Self {
        EngineConfig {
            threads: 1,
            plan_cache: false,
            dag_templates: false,
            ..EngineConfig::default()
        }
    }

    /// Same engine with a fixed worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Memoized predictions, keyed by spec fingerprint then by the plan's
/// per-stage GPU vector. Two levels so lookups can borrow the plan as a
/// `&[u32]` without allocating a key (`Box<[u32]>: Borrow<[u32]>`); the
/// boxed-slice key also keeps inserts at exactly one allocation. The
/// Monte-Carlo configuration need not be part of the key because
/// [`Simulator::with_config`] detaches the caches.
type PredictionCache = HashMap<u64, HashMap<Box<[u32]>, Prediction>>;

/// Reusable bookkeeping for [`Simulator::predict_batch`]: the per-plan
/// hit table, miss list, and dedupe tables. Thread-local (like the
/// [`PredictArena`], which batch prediction also drives) so a planner
/// issuing batches in a loop stops paying the allocator after the first
/// call. Separate from the arena because a batch *contains* predictions:
/// the scratch is alive across the `predict_one` calls that borrow the
/// arena.
#[derive(Debug, Default)]
struct BatchScratch {
    /// Resolved prediction per input slot (`None` = pending or failed).
    hits: Vec<Option<Prediction>>,
    /// Input indices that missed the plan cache.
    miss_idx: Vec<usize>,
    /// Representative input index per distinct missed plan.
    compute_idx: Vec<usize>,
    /// For each miss, the index into `compute_idx` holding its plan.
    slot_of: Vec<usize>,
}

thread_local! {
    static BATCH_SCRATCH: RefCell<BatchScratch> = RefCell::new(BatchScratch::default());
}

/// Resets the prediction cache when inserting `incoming` more entries
/// would exceed `cap` (generation eviction; `cap == 0` disables).
/// Returns the number of entries dropped.
fn evict_generation(cache: &mut PredictionCache, cap: usize, incoming: usize) -> usize {
    if cap == 0 {
        return 0;
    }
    let total: usize = cache.values().map(HashMap::len).sum();
    if total + incoming > cap {
        cache.clear();
        return total;
    }
    0
}

/// Expands a plan's instance ladder into release groups: `(stage,
/// provisioned_at, count)` triples in release order, written into
/// caller-owned buffers (the arena's, on the hot path — both are cleared
/// first). Instances are released LIFO at each stage barrier down to the
/// next stage's need, so instances provisioned together leave together
/// (possibly split across barriers) — and, sharing one hand-over time,
/// incur identical charges that can be billed as `charge × count`. Stage
/// indices fit `u32` by construction (a plan has at most `u32` stages).
fn release_groups_into(
    needed: &[u32],
    new_inst: &[u32],
    stack: &mut Vec<(u32, u32)>,
    out: &mut Vec<(u32, u32, u32)>,
) {
    stack.clear();
    out.clear();
    let n_stages = needed.len();
    let mut have = 0u32;
    for s in 0..n_stages {
        if new_inst[s] > 0 {
            stack.push((s as u32, new_inst[s]));
            have += new_inst[s];
        }
        let keep = if s + 1 < n_stages { needed[s + 1] } else { 0 };
        while have > keep {
            let (prov, count) = stack.last_mut().expect("live instances on the stack");
            let take = (have - keep).min(*count);
            out.push((s as u32, *prov, take));
            *count -= take;
            have -= take;
            if *count == 0 {
                stack.pop();
            }
        }
    }
}

/// Order-independent 64-bit fingerprint of a spec's stage ladder.
fn spec_fingerprint(spec: &ExperimentSpec) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    for stage in spec.stages() {
        stage.num_trials.hash(&mut hasher);
        stage.iters.hash(&mut hasher);
    }
    hasher.finish()
}

/// Snapshot of the prediction engine's cache counters (see
/// [`Simulator::cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCacheStats {
    /// The memoized-prediction (plan) cache.
    pub plan: CacheStats,
    /// The per-template stage-sample memo, summed over cached templates.
    pub stage_memo: CacheStats,
    /// Thread-local prediction arenas: a hit is a prediction whose
    /// working set already fit the thread's arena (steady state, zero
    /// allocation), a miss is one that grew it. Process-wide — arenas
    /// belong to threads, not simulators.
    pub arena: CacheStats,
    /// Plan-cache probes served through a borrowed `&[u32]` key — each
    /// one a key allocation the owned-key probe path used to pay for.
    /// Session-wide like [`SimCacheStats::plan`] (survives cache
    /// detachment by [`Simulator::with_config`]).
    pub probe_allocs_saved: u64,
}

/// The plan simulator: owns the fitted profiles and predicts JCT/cost for
/// candidate allocation plans.
///
/// Prediction is served by a parallel, memoized engine (see
/// [`EngineConfig`]): plans already predicted for a spec are returned from
/// an interior cache, DAG construction reuses a per-spec [`DagTemplate`],
/// and [`Simulator::predict_batch`] fans candidate plans out across
/// threads. Clones share the caches (they are behind [`Arc`]), which is
/// what the planner wants — warm-start descents re-visit each other's
/// plans constantly.
#[derive(Debug, Clone)]
pub struct Simulator {
    model: ModelProfile,
    cloud: CloudProfile,
    config: SimConfig,
    engine: EngineConfig,
    /// Per-spec DAG templates, keyed by spec fingerprint.
    templates: Arc<Mutex<HashMap<u64, Arc<DagTemplate>>>>,
    /// Memoized predictions.
    predictions: Arc<Mutex<PredictionCache>>,
    /// Plan-cache hit/miss/eviction tallies (passive; shared by clones
    /// for the lifetime of the planning session, surviving cache
    /// detachment so totals cover the whole run).
    plan_counters: Arc<CacheCounters>,
    /// Plan-cache probes that borrowed the plan's slice as the lookup key
    /// instead of allocating an owned one (passive; shared like
    /// `plan_counters`).
    probe_saved: Arc<AtomicU64>,
    /// Observability sink; the no-op handle by default. Prediction
    /// results are bit-identical whatever recorder is attached — the
    /// recorder only ever *receives* values.
    recorder: RecorderHandle,
}

impl Simulator {
    /// Creates a simulator with default Monte-Carlo settings.
    pub fn new(model: ModelProfile, cloud: CloudProfile) -> Self {
        Simulator {
            model,
            cloud,
            config: SimConfig::default(),
            engine: EngineConfig::default(),
            templates: Arc::new(Mutex::new(HashMap::new())),
            predictions: Arc::new(Mutex::new(HashMap::new())),
            plan_counters: Arc::new(CacheCounters::default()),
            probe_saved: Arc::new(AtomicU64::new(0)),
            recorder: RecorderHandle::noop(),
        }
    }

    /// Attaches an observability recorder. The recorder receives cache
    /// statistics and per-sample critical-path histograms; it never
    /// influences prediction results.
    #[must_use]
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// The attached recorder (the no-op handle unless
    /// [`Simulator::with_recorder`] was called). The planner and the
    /// adaptation controller emit their events through this.
    pub fn recorder(&self) -> &RecorderHandle {
        &self.recorder
    }

    /// Cache statistics for this simulator's planning session: plan
    /// cache totals (shared by clones) and stage-sample memo totals
    /// summed over the cached templates.
    pub fn cache_stats(&self) -> SimCacheStats {
        let stage_memo = self
            .templates
            .lock()
            .expect("template cache poisoned")
            .values()
            .fold(CacheStats::default(), |acc, t| acc.merged(&t.memo_stats()));
        SimCacheStats {
            plan: self.plan_counters.snapshot(),
            stage_memo,
            arena: ARENA_COUNTERS.snapshot(),
            probe_allocs_saved: self.probe_saved.load(Ordering::Relaxed),
        }
    }

    /// Overrides the Monte-Carlo configuration. Detaches this simulator
    /// from any caches shared with clones: cached templates and
    /// predictions embed the old seed/sample-count/overhead.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self.templates = Arc::new(Mutex::new(HashMap::new()));
        self.predictions = Arc::new(Mutex::new(HashMap::new()));
        self
    }

    /// Overrides the engine configuration (threads, caching, template
    /// reuse). Cached values stay valid — engine settings change speed,
    /// never results.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// A simulator drawing `samples` Monte-Carlo samples per prediction,
    /// **sharing this simulator's DAG templates** (and their stage-sample
    /// memos) but with its own plan-prediction cache.
    ///
    /// Sample `i` is a pure function of `(config.seed, i)`, so the sample
    /// set at a lower count is a strict prefix of the sample set at a
    /// higher one: a low-fidelity simulator re-uses (and pre-warms) the
    /// full-fidelity stage samples. Cached [`Prediction`]s embed the
    /// sample count, which is why the plan cache is detached.
    ///
    /// This is the planner's fidelity ladder: explore candidates cheaply,
    /// then re-score survivors on the full-fidelity parent.
    #[must_use]
    pub fn with_samples(&self, samples: u32) -> Simulator {
        let mut low = self.clone();
        low.config.samples = samples;
        low.predictions = Arc::new(Mutex::new(HashMap::new()));
        low
    }

    /// The cloud profile in use.
    pub fn cloud(&self) -> &CloudProfile {
        &self.cloud
    }

    /// The model profile in use.
    pub fn model(&self) -> &ModelProfile {
        &self.model
    }

    /// The Monte-Carlo configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The engine configuration.
    pub fn engine(&self) -> &EngineConfig {
        &self.engine
    }

    /// Number of predictions currently memoized.
    pub fn cached_predictions(&self) -> usize {
        self.predictions
            .lock()
            .expect("prediction cache poisoned")
            .values()
            .map(HashMap::len)
            .sum()
    }

    /// The (possibly cached) DAG template for `spec` under this
    /// simulator's profiles and sync overhead.
    pub fn template_for(&self, spec: &ExperimentSpec) -> Arc<DagTemplate> {
        let fp = spec_fingerprint(spec);
        let mut templates = self.templates.lock().expect("template cache poisoned");
        templates
            .entry(fp)
            .or_insert_with(|| {
                Arc::new(
                    DagTemplate::new(
                        spec,
                        &self.model,
                        &self.cloud,
                        self.config.sync_overhead_secs,
                    )
                    .with_memo_cap(self.engine.stage_memo_cap),
                )
            })
            .clone()
    }

    /// Builds the execution DAG for `plan`, through the template cache
    /// when the engine enables it.
    fn dag_for(&self, spec: &ExperimentSpec, plan: &AllocationPlan) -> Result<ExecDag> {
        if self.engine.dag_templates {
            self.template_for(spec).instantiate(plan)
        } else {
            ExecDag::build(
                spec,
                plan,
                &self.model,
                &self.cloud,
                self.config.sync_overhead_secs,
            )
        }
    }

    /// Predicts `plan` against a DAG template by composing per-stage
    /// Monte-Carlo samples.
    ///
    /// Stages are separated by full barriers, so a sampled execution is
    /// exactly the concatenation of its sampled stages: JCT is the sum of
    /// stage spans, and per-instance lifetimes are reconstructed from the
    /// stage-relative hand-over offsets the same way
    /// [`Simulator::sample_run`] reconstructs them from absolute node
    /// finish times. Stage samples come from the template's memo
    /// ([`DagTemplate::stage_samples`]), so candidate plans that share a
    /// stage configuration — the planner's common case — share the
    /// expensive sampling work and only pay for this cheap composition.
    ///
    /// Sample `i` everywhere derives from `Prng::for_stream(config.seed,
    /// i)`, so the sample set is fixed by the configuration alone; workers
    /// fill disjoint index-ordered array slices and aggregation runs
    /// sequentially over them, making the result bit-identical at every
    /// thread count and cache state.
    ///
    /// All scratch lives in the calling thread's [`PredictArena`]
    /// (struct-of-arrays: `jct[i]`/`compute[i]` instead of the former
    /// `Vec<RunSample>`), so once the arena has served a working set at
    /// least this large, the sequential path performs **zero heap
    /// allocation** — the invariant the `alloc-counter` bench gate
    /// asserts. The multi-thread path allocates only per-worker hand-over
    /// buffers and thread stacks.
    fn predict_with_template(
        &self,
        template: &DagTemplate,
        plan: &AllocationPlan,
        threads: usize,
    ) -> Result<Prediction> {
        template.validate(plan)?;
        let n_stages = template.num_stages();
        let n = self.config.samples.max(1) as usize;
        let pricing = &self.cloud.pricing;
        let per_instance = pricing.billing.is_per_instance();
        with_arena(|arena| {
            if arena.ensure(n_stages, n) {
                ARENA_COUNTERS.hits_add(1);
            } else {
                ARENA_COUNTERS.misses_add(1);
            }
            let PredictArena {
                needed,
                new_inst,
                stage_arcs,
                releases,
                release_stack,
                hand,
                jct,
                compute,
                ..
            } = arena;
            let total_instances = template.instance_ladder_into(plan, needed, new_inst);
            for (s, &grown) in new_inst.iter().enumerate() {
                stage_arcs.push(template.stage_samples(
                    s,
                    plan.gpus(s),
                    grown,
                    self.config.seed,
                    n as u32,
                    pricing,
                ));
            }
            let data_cost =
                pricing.ingress_charge(self.cloud.dataset_gb) * u64::from(total_instances);
            // The plan's release schedule is sample-independent: instances
            // provisioned together share a hand-over time and are released
            // together (LIFO at stage barriers), so precompute, per stage,
            // which provisioning groups release how many instances — one
            // charge per group per sample instead of one per instance.
            if per_instance {
                release_groups_into(needed, new_inst, release_stack, releases);
            }
            let stage_arcs = &*stage_arcs;
            let new_inst = &*new_inst;
            let releases = &*releases;
            // The per-sample kernel, writing a contiguous run of samples
            // into its slice of the arena's SoA output arrays. `hand` is
            // scratch: every entry read within a sample was written
            // earlier in that same sample (releases reference stages
            // `prov ≤ s` that provisioned), so reuse across samples and
            // workers cannot leak state.
            let fill = |range: std::ops::Range<usize>,
                        jct_out: &mut [f64],
                        comp_out: &mut [Cost],
                        hand: &mut [f64]| {
                for (off, i) in range.enumerate() {
                    let mut now = 0.0_f64;
                    let mut cc = Cost::ZERO;
                    let mut next_release = 0;
                    for s in 0..n_stages {
                        let ss = stage_arcs[s][i];
                        let stage_end = now + ss.dur;
                        if per_instance {
                            if new_inst[s] > 0 {
                                hand[s] = now + ss.handover;
                            }
                            while let Some(&(at, prov, count)) = releases.get(next_release) {
                                if at as usize != s {
                                    break;
                                }
                                next_release += 1;
                                let held = SimDuration::from_secs_f64(
                                    (stage_end - hand[prov as usize]).max(0.0),
                                );
                                cc += pricing.instance_charge(held) * u64::from(count);
                            }
                        } else {
                            cc += ss.fn_charge;
                        }
                        now = stage_end;
                    }
                    jct_out[off] = now;
                    comp_out[off] = cc;
                }
            };
            let t = if threads == 0 {
                auto_threads()
            } else {
                threads
            }
            .min(n.max(1));
            if t <= 1 {
                fill(0..n, jct, compute, hand);
            } else {
                // Contiguous even split, no stealing: samples of one plan
                // are uniform work, so the finer chunking `plan_chunks`
                // picks for skewed batches buys nothing here.
                let chunk = n.div_ceil(t);
                std::thread::scope(|scope| {
                    let fill = &fill;
                    let mut rest_j: &mut [f64] = jct;
                    let mut rest_c: &mut [Cost] = compute;
                    let mut lo = 0usize;
                    while lo < n {
                        let hi = (lo + chunk).min(n);
                        let (head_j, tail_j) = rest_j.split_at_mut(hi - lo);
                        let (head_c, tail_c) = rest_c.split_at_mut(hi - lo);
                        rest_j = tail_j;
                        rest_c = tail_c;
                        scope.spawn(move || {
                            // Workers get a local hand-over buffer; the
                            // zero-allocation contract covers the
                            // sequential path.
                            let mut hand = vec![0.0_f64; n_stages];
                            fill(lo..hi, head_j, head_c, &mut hand);
                        });
                        lo = hi;
                    }
                });
            }
            if self.recorder.enabled() {
                // Per-sample critical-path observations: each sampled JCT
                // is the length of that sample's DAG critical path. The
                // arrays are index-ordered regardless of thread count, and
                // histogram statistics are order-insensitive anyway.
                for i in 0..n {
                    self.recorder.histogram("sim", "sample_jct_secs", jct[i]);
                    self.recorder.histogram(
                        "sim",
                        "sample_cost_usd",
                        (compute[i] + data_cost).as_dollars(),
                    );
                }
            }
            // Two-pass mean/std, inlined to keep the hot path
            // allocation-free (same unbiased n-1 semantics as
            // `rb_core::stats::std`). The data-ingress charge is constant
            // across samples and folded in here, exactly as the former
            // per-sample `total_cost()` did (integer micro-dollar add).
            let n_f = n as f64;
            let mut jct_sum = 0.0_f64;
            let mut cost_sum = 0.0_f64;
            for i in 0..n {
                jct_sum += jct[i];
                cost_sum += (compute[i] + data_cost).as_dollars();
            }
            let jct_mean = jct_sum / n_f;
            let cost_mean = cost_sum / n_f;
            let (jct_std, cost_std) = if n < 2 {
                (0.0, 0.0)
            } else {
                let mut jv = 0.0_f64;
                let mut cv = 0.0_f64;
                for i in 0..n {
                    let dj = jct[i] - jct_mean;
                    jv += dj * dj;
                    let dc = (compute[i] + data_cost).as_dollars() - cost_mean;
                    cv += dc * dc;
                }
                ((jv / (n_f - 1.0)).sqrt(), (cv / (n_f - 1.0)).sqrt())
            };
            Ok(Prediction {
                jct: SimDuration::from_secs_f64(jct_mean),
                jct_std_secs: jct_std,
                cost: Cost::from_dollars(cost_mean),
                cost_std: Cost::from_dollars(cost_std),
                samples: n as u32,
            })
        })
    }

    /// Predicts one plan without consulting or filling the prediction
    /// cache. With `dag_templates` off, a fresh template (and fresh stage
    /// samples) is built for every call — the cold baseline.
    fn predict_uncached(
        &self,
        spec: &ExperimentSpec,
        plan: &AllocationPlan,
        threads: usize,
    ) -> Result<Prediction> {
        if self.engine.dag_templates {
            self.predict_with_template(&self.template_for(spec), plan, threads)
        } else {
            let template = DagTemplate::new(
                spec,
                &self.model,
                &self.cloud,
                self.config.sync_overhead_secs,
            );
            self.predict_with_template(&template, plan, threads)
        }
    }

    /// Predicts JCT and cost of executing `spec` under `plan`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rb_sim::{AllocationPlan, Simulator};
    /// use rb_profile::{CloudProfile, ModelProfile};
    /// use rb_cloud::{catalog::P3_8XLARGE, CloudPricing};
    /// use rb_hpo::ShaParams;
    /// use rb_scaling::{AnalyticScaling, zoo::RESNET50};
    /// use std::sync::Arc;
    ///
    /// let spec = ShaParams::new(8, 1, 8).generate().unwrap();
    /// let model = ModelProfile::from_scaling(
    ///     "rn50",
    ///     Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4)),
    ///     10,
    ///     2.0,
    ///     0.0,
    /// );
    /// let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
    /// let sim = Simulator::new(model, cloud);
    /// let pred = sim.predict(&spec, &AllocationPlan::flat(8, 4)).unwrap();
    /// assert!(pred.cost > rb_core::Cost::ZERO);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`rb_core::RbError::InvalidPlan`] when the plan does not
    /// validate against the spec.
    pub fn predict(&self, spec: &ExperimentSpec, plan: &AllocationPlan) -> Result<Prediction> {
        if !self.engine.plan_cache {
            return self.predict_uncached(spec, plan, self.engine.threads);
        }
        let fp = spec_fingerprint(spec);
        // Borrowed-key probe: the lookup hashes the plan's own `&[u32]`
        // slice (`Box<[u32]>: Borrow<[u32]>`), so a hit — the planner's
        // steady state — allocates nothing.
        self.probe_saved.fetch_add(1, Ordering::Relaxed);
        if let Some(hit) = self
            .predictions
            .lock()
            .expect("prediction cache poisoned")
            .get(&fp)
            .and_then(|per_plan| per_plan.get(plan.as_slice()))
        {
            self.plan_counters.hits_add(1);
            return Ok(*hit);
        }
        self.plan_counters.misses_add(1);
        let pred = self.predict_uncached(spec, plan, self.engine.threads)?;
        let mut cache = self.predictions.lock().expect("prediction cache poisoned");
        let evicted = evict_generation(&mut cache, self.engine.plan_cache_cap, 1);
        self.plan_counters.evictions_add(evicted as u64);
        cache
            .entry(fp)
            .or_default()
            .insert(Box::from(plan.as_slice()), pred);
        Ok(pred)
    }

    /// Predicts every plan of a candidate batch, returning one result per
    /// plan **in input order**.
    ///
    /// This is the planner's unit of work: a greedy step generates one or
    /// two candidates per stage and needs all of them evaluated. Cached
    /// plans are served from memory; the misses are computed in parallel —
    /// across plans when there are several, across Monte-Carlo samples
    /// when only one plan misses. Results are bit-identical to calling
    /// [`Simulator::predict`] on each plan sequentially.
    ///
    /// An invalid plan yields an [`rb_core::RbError::InvalidPlan`] in its
    /// own slot without poisoning the rest of the batch.
    ///
    /// Bookkeeping (hit table, miss list, dedupe tables) lives in a
    /// thread-local scratch reused across calls, so a warm all-hit batch
    /// — the beam-search steady state — performs exactly one allocation:
    /// the returned vector.
    pub fn predict_batch(
        &self,
        spec: &ExperimentSpec,
        plans: &[AllocationPlan],
    ) -> Vec<Result<Prediction>> {
        let fp = spec_fingerprint(spec);
        // Steal the scratch instead of holding the `RefCell` borrow across
        // prediction calls; restored (with its grown capacity) on exit.
        let mut sc = BATCH_SCRATCH.with(|b| std::mem::take(&mut *b.borrow_mut()));
        sc.hits.clear();
        sc.miss_idx.clear();
        sc.compute_idx.clear();
        sc.slot_of.clear();
        if self.engine.plan_cache {
            self.probe_saved
                .fetch_add(plans.len() as u64, Ordering::Relaxed);
            let cache = self.predictions.lock().expect("prediction cache poisoned");
            let per_plan = cache.get(&fp);
            for (i, plan) in plans.iter().enumerate() {
                match per_plan.and_then(|m| m.get(plan.as_slice())) {
                    Some(hit) => sc.hits.push(Some(*hit)),
                    None => {
                        sc.hits.push(None);
                        sc.miss_idx.push(i);
                    }
                }
            }
        } else {
            sc.hits.resize(plans.len(), None);
            sc.miss_idx.extend(0..plans.len());
        }
        if self.engine.plan_cache {
            self.plan_counters
                .hits_add((plans.len() - sc.miss_idx.len()) as u64);
            self.plan_counters.misses_add(sc.miss_idx.len() as u64);
        }
        // Deduplicate repeated plans within the batch (candidate ladders
        // overlap): compute each distinct plan once. Batches are a handful
        // of short plans, so a linear scan beats hashing each one.
        for &i in &sc.miss_idx {
            let slice = plans[i].as_slice();
            match sc
                .compute_idx
                .iter()
                .position(|&j| plans[j].as_slice() == slice)
            {
                Some(k) => sc.slot_of.push(k),
                None => {
                    sc.slot_of.push(sc.compute_idx.len());
                    sc.compute_idx.push(i);
                }
            }
        }
        // Resolve the spec's template once for the whole batch instead of
        // once per miss (the template cache is a lock + spec hash away).
        let template = if self.engine.dag_templates && !sc.compute_idx.is_empty() {
            Some(self.template_for(spec))
        } else {
            None
        };
        let predict_one = |plan: &AllocationPlan, threads: usize| match &template {
            Some(t) => self.predict_with_template(t, plan, threads),
            None => self.predict_uncached(spec, plan, threads),
        };
        if self.recorder.enabled() && sc.compute_idx.len() > 1 {
            // Record the chunking the fan-out below will use, so benches
            // and tests can assert the batch-size-aware granularity
            // without re-deriving it.
            let cp = plan_chunks(sc.compute_idx.len(), self.engine.threads);
            self.recorder
                .counter_add("sim", "batch_plans_computed", sc.compute_idx.len() as u64);
            self.recorder
                .counter_add("sim", "batch_chunks", cp.num_chunks as u64);
            self.recorder
                .counter_add("sim", "batch_chunk_items", cp.chunk_size as u64);
        }
        let computed: Vec<Result<Prediction>> = if sc.compute_idx.len() <= 1 {
            // A lone miss still gets the threads — across samples.
            sc.compute_idx
                .iter()
                .map(|&i| predict_one(&plans[i], self.engine.threads))
                .collect()
        } else {
            let compute_idx = &sc.compute_idx;
            run_chunked(compute_idx.len(), self.engine.threads, |range| {
                range
                    .map(|k| predict_one(&plans[compute_idx[k]], 1))
                    .collect()
            })
        };
        if self.engine.plan_cache {
            let mut cache = self.predictions.lock().expect("prediction cache poisoned");
            let incoming = computed.iter().filter(|r| r.is_ok()).count();
            let evicted = evict_generation(&mut cache, self.engine.plan_cache_cap, incoming);
            self.plan_counters.evictions_add(evicted as u64);
            let per_plan = cache.entry(fp).or_default();
            for (&i, result) in sc.compute_idx.iter().zip(&computed) {
                if let Ok(pred) = result {
                    per_plan.insert(Box::from(plans[i].as_slice()), *pred);
                }
            }
        }
        for (&i, &k) in sc.miss_idx.iter().zip(&sc.slot_of) {
            if let Ok(pred) = &computed[k] {
                sc.hits[i] = Some(*pred);
            }
        }
        let out: Vec<Result<Prediction>> = plans
            .iter()
            .enumerate()
            .map(|(i, _)| match sc.hits[i] {
                Some(pred) => Ok(pred),
                // Slots still empty failed to compute. Re-derive each
                // error (errors are not clonable): only invalid plans
                // land here, and re-validation is cheap and exact.
                None => self.predict_uncached(spec, &plans[i], 1),
            })
            .collect();
        BATCH_SCRATCH.with(|b| *b.borrow_mut() = sc);
        out
    }

    /// The sequential reference prediction: fresh template, one thread,
    /// no memoization of any kind. Exists so tests and benchmarks can
    /// compare the engine against a known-good baseline; results are
    /// bit-identical to [`Simulator::predict`] by the determinism
    /// contract.
    ///
    /// # Errors
    ///
    /// Returns [`rb_core::RbError::InvalidPlan`] when the plan does not
    /// validate against the spec.
    pub fn predict_reference(
        &self,
        spec: &ExperimentSpec,
        plan: &AllocationPlan,
    ) -> Result<Prediction> {
        let template = DagTemplate::new(
            spec,
            &self.model,
            &self.cloud,
            self.config.sync_overhead_secs,
        );
        self.predict_with_template(&template, plan, 1)
    }

    /// Exports per-stage span quantiles for `plan` — the prediction
    /// envelope a closed-loop controller monitors drift against.
    ///
    /// Served from the same canonical stage-sample memo as
    /// [`Simulator::predict`] (identical keys, identical counter-derived
    /// streams), so the quantiles are exactly the distribution the
    /// plan's prediction was composed from, and computing them warms the
    /// cache a later re-planning pass will hit.
    ///
    /// # Errors
    ///
    /// Returns [`rb_core::RbError::InvalidPlan`] when the plan does not
    /// validate against the spec.
    pub fn stage_quantiles(
        &self,
        spec: &ExperimentSpec,
        plan: &AllocationPlan,
    ) -> Result<Vec<StageQuantiles>> {
        let template = if self.engine.dag_templates {
            self.template_for(spec)
        } else {
            Arc::new(DagTemplate::new(
                spec,
                &self.model,
                &self.cloud,
                self.config.sync_overhead_secs,
            ))
        };
        template.validate(plan)?;
        let n = self.config.samples.max(1);
        let pricing = &self.cloud.pricing;
        let (_, new_inst, _) = template.instance_ladder(plan);
        Ok((0..template.num_stages())
            .map(|s| {
                let ss = template.stage_samples(
                    s,
                    plan.gpus(s),
                    new_inst[s],
                    self.config.seed,
                    n,
                    pricing,
                );
                // The memo may hold more samples than this simulator's
                // fidelity; quantiles use exactly the first `n` (the
                // sample set is prefix-consistent per seed).
                let mut durs: Vec<f64> = ss.iter().take(n as usize).map(|x| x.dur).collect();
                durs.sort_by(f64::total_cmp);
                let q = |p: f64| {
                    let idx = (p * (durs.len() - 1) as f64).round() as usize;
                    durs[idx.min(durs.len() - 1)]
                };
                StageQuantiles {
                    stage: s,
                    samples: n,
                    mean_secs: durs.iter().sum::<f64>() / durs.len() as f64,
                    p10_secs: q(0.10),
                    p50_secs: q(0.50),
                    p90_secs: q(0.90),
                }
            })
            .collect())
    }

    /// Explains a plan stage by stage: mean duration and cost share per
    /// stage across the Monte-Carlo samples. The cost decomposition is
    /// informational (instances that span stages are attributed to the
    /// stage in which they are released), so stage costs sum to the
    /// compute bill but individual attributions are approximate.
    ///
    /// # Errors
    ///
    /// Returns [`rb_core::RbError::InvalidPlan`] when the plan does not
    /// validate against the spec.
    pub fn explain(
        &self,
        spec: &ExperimentSpec,
        plan: &AllocationPlan,
    ) -> Result<Vec<StageBreakdown>> {
        let dag = self.dag_for(spec, plan)?;
        let samples = self.config.samples.max(1);
        let n_stages = spec.num_stages();
        let pricing = &self.cloud.pricing;
        // The accumulators and full-DAG walk buffers come from the same
        // thread-local arena as prediction scratch (the DAG itself is
        // still built per call — breakdowns are off the per-step hot
        // path).
        with_arena(|arena| {
            let PredictArena {
                dur_sum,
                cost_sum,
                finish,
                duration,
                live,
                ..
            } = arena;
            dur_sum.clear();
            dur_sum.resize(n_stages, 0.0);
            cost_sum.clear();
            cost_sum.resize(n_stages, 0.0);
            for s in 0..samples {
                // Draw the same schedule sample the predictor draws
                // (shared kernel, same counter-derived seed), then
                // attribute it to stage boundaries.
                let mut rng = Prng::for_stream(self.config.seed, u64::from(s));
                dag.sample_schedule(&mut rng, finish, duration);
                let mut prev_end = 0.0_f64;
                // Per-instance attribution: lifetimes released per stage.
                live.clear();
                for s in 0..n_stages {
                    let stage_end = finish[dag.stage_sync[s]];
                    dur_sum[s] += stage_end - prev_end;
                    prev_end = stage_end;
                    if pricing.billing.is_per_instance() {
                        if dag.stage_new_instances[s] > 0 {
                            let hand_over = finish[dag.stage_scale[s].expect("scale node exists")];
                            for _ in 0..dag.stage_new_instances[s] {
                                live.push(hand_over);
                            }
                        }
                        let keep = if s + 1 < n_stages {
                            dag.stage_instances[s + 1] as usize
                        } else {
                            0
                        };
                        while live.len() > keep {
                            let h = live.pop().expect("live non-empty");
                            cost_sum[s] += pricing
                                .instance_charge(SimDuration::from_secs_f64(
                                    (stage_end - h).max(0.0),
                                ))
                                .as_dollars();
                        }
                    }
                }
                if !pricing.billing.is_per_instance() {
                    for (i, node) in dag.nodes.iter().enumerate() {
                        if let NodeKind::Train { stage, gpus, .. } = node.kind {
                            cost_sum[stage] += pricing
                                .function_charge(gpus, SimDuration::from_secs_f64(duration[i]))
                                .as_dollars();
                        }
                    }
                }
            }
            Ok((0..n_stages)
                .map(|s| {
                    let (trials, _) = spec.get_stage(s).expect("stage in range");
                    StageBreakdown {
                        stage: s,
                        trials,
                        gpus_per_trial: plan.gpus_per_trial(s, spec),
                        instances: dag.stage_instances[s],
                        duration: SimDuration::from_secs_f64(dur_sum[s] / samples as f64),
                        cost: Cost::from_dollars(cost_sum[s] / samples as f64),
                    }
                })
                .collect())
        })
    }

    /// Draws one execution sample from the DAG (Algorithm 1 plus billing).
    pub fn sample_run(&self, dag: &ExecDag, rng: &mut Prng) -> RunSample {
        let mut finish = Vec::new();
        let mut duration = Vec::new();
        dag.sample_schedule(rng, &mut finish, &mut duration);
        self.bill_sample(dag, &finish, &duration)
    }

    /// Bills one sampled schedule (node finish times and durations) under
    /// the active pricing model.
    fn bill_sample(&self, dag: &ExecDag, finish: &[f64], duration: &[f64]) -> RunSample {
        let jct_secs = finish.iter().copied().fold(0.0_f64, f64::max);

        let pricing = &self.cloud.pricing;
        let data_cost =
            pricing.ingress_charge(self.cloud.dataset_gb) * u64::from(dag.total_instances);

        let compute_cost = if pricing.billing.is_per_instance() {
            // Reconstruct instance lifetimes from stage boundaries.
            let mut live: Vec<f64> = Vec::new();
            let mut total = Cost::ZERO;
            let stages = dag.stage_sync.len();
            for s in 0..stages {
                if dag.stage_new_instances[s] > 0 {
                    let scale_idx = dag.stage_scale[s]
                        .expect("stage with new instances must have a SCALE node");
                    let hand_over = finish[scale_idx];
                    for _ in 0..dag.stage_new_instances[s] {
                        live.push(hand_over);
                    }
                }
                let stage_end = finish[dag.stage_sync[s]];
                let keep = if s + 1 < stages {
                    dag.stage_instances[s + 1] as usize
                } else {
                    0
                };
                while live.len() > keep {
                    let hand_over = live.pop().expect("live is non-empty");
                    let held = SimDuration::from_secs_f64((stage_end - hand_over).max(0.0));
                    total += pricing.instance_charge(held);
                }
            }
            debug_assert!(live.is_empty(), "all instances released at job end");
            total
        } else {
            // Per-function: each TRAIN task pays for its own GPU-time.
            let mut total = Cost::ZERO;
            for (i, node) in dag.nodes.iter().enumerate() {
                if let NodeKind::Train { gpus, .. } = node.kind {
                    total += pricing.function_charge(gpus, SimDuration::from_secs_f64(duration[i]));
                }
            }
            total
        };

        RunSample {
            jct_secs,
            compute_cost,
            data_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_2XLARGE;
    use rb_cloud::CloudPricing;
    use rb_scaling::zoo::RESNET50;
    use rb_scaling::{AnalyticScaling, IdealScaling};
    use std::sync::Arc;

    fn ideal_model(noise: f64) -> ModelProfile {
        ModelProfile::from_scaling(
            "ideal",
            Arc::new(IdealScaling::new(4.0, 512)),
            1,
            0.0,
            noise,
        )
    }

    fn cloud_1gpu() -> CloudProfile {
        CloudProfile::new(CloudPricing::on_demand(P3_2XLARGE))
            .with_provision_delay(SimDuration::from_secs(10))
            .with_init_latency(SimDuration::from_secs(20))
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec::from_stages(&[(4, 10), (2, 10), (1, 10)]).unwrap()
    }

    fn sim(noise: f64, cloud: CloudProfile) -> Simulator {
        Simulator::new(ideal_model(noise), cloud).with_config(SimConfig {
            samples: 8,
            seed: 7,
            sync_overhead_secs: 1.0,
        })
    }

    #[test]
    fn deterministic_jct_is_exact() {
        // Stage timeline: scale 10 + init 20 + train 40 + sync 1 = 71;
        // then 40 + 1 = 112; then 40 + 1 = 153.
        let s = sim(0.0, cloud_1gpu());
        let p = s
            .predict(&spec(), &AllocationPlan::new(vec![4, 2, 1]))
            .unwrap();
        assert_eq!(p.jct, SimDuration::from_secs(153));
        assert_eq!(p.jct_std_secs, 0.0);
    }

    #[test]
    fn deterministic_per_instance_cost_is_exact() {
        // Lifetimes: hand-over at t=10 for all 4; two released at 71
        // (61 s each), one at 112 (102 s), one at 153 (143 s).
        let s = sim(0.0, cloud_1gpu());
        let p = s
            .predict(&spec(), &AllocationPlan::new(vec![4, 2, 1]))
            .unwrap();
        let pr = CloudPricing::on_demand(P3_2XLARGE);
        let expect = pr.instance_charge(SimDuration::from_secs(61)) * 2
            + pr.instance_charge(SimDuration::from_secs(102))
            + pr.instance_charge(SimDuration::from_secs(143));
        assert_eq!(p.cost, expect);
        assert_eq!(p.cost_std, Cost::ZERO);
    }

    #[test]
    fn deterministic_per_function_cost_is_exact() {
        let cloud = cloud_1gpu();
        let pricing = cloud.pricing.clone().with_per_function_billing();
        let cloud = CloudProfile { pricing, ..cloud };
        let s = sim(0.0, cloud);
        let p = s
            .predict(&spec(), &AllocationPlan::new(vec![4, 2, 1]))
            .unwrap();
        // 7 TRAIN tasks × 40 s × 1 GPU.
        let pr = CloudPricing::on_demand(P3_2XLARGE).with_per_function_billing();
        let expect = pr.function_charge(1, SimDuration::from_secs(40)) * 7;
        assert_eq!(p.cost, expect);
    }

    #[test]
    fn stragglers_inflate_per_instance_but_not_per_function_cost() {
        // The Fig. 9 mechanism. Same workload, rising noise.
        let spec = ExperimentSpec::from_stages(&[(8, 10), (4, 10)]).unwrap();
        let plan = AllocationPlan::new(vec![8, 4]);
        let run = |noise: f64, per_function: bool| {
            let mut cloud = cloud_1gpu();
            if per_function {
                cloud.pricing = cloud.pricing.with_per_function_billing();
            }
            let s = Simulator::new(ideal_model(noise), cloud).with_config(SimConfig {
                samples: 60,
                seed: 3,
                sync_overhead_secs: 1.0,
            });
            s.predict(&spec, &plan).unwrap().cost.as_dollars()
        };
        let pi_calm = run(0.01, false);
        let pi_stormy = run(1.5, false);
        let pf_calm = run(0.01, true);
        let pf_stormy = run(1.5, true);
        // Per-instance: everyone waits for the slowest trial.
        assert!(
            pi_stormy > pi_calm * 1.3,
            "per-instance {pi_calm} -> {pi_stormy}"
        );
        // Per-function: cost tracks mean work, which noise barely moves.
        assert!(
            (pf_stormy - pf_calm).abs() / pf_calm < 0.15,
            "per-function {pf_calm} -> {pf_stormy}"
        );
    }

    #[test]
    fn data_ingress_charged_once_per_instance() {
        let cloud = cloud_1gpu().with_dataset_gb(150.0);
        let mut pricing = cloud.pricing.clone();
        pricing = pricing.with_data_price(Cost::from_dollars(0.01));
        let cloud = CloudProfile { pricing, ..cloud };
        let s = sim(0.0, cloud);
        let plan = AllocationPlan::new(vec![4, 2, 1]);
        let dag = ExecDag::build(&spec(), &plan, s.model(), s.cloud(), 1.0).unwrap();
        let mut rng = Prng::seed_from_u64(0);
        let sample = s.sample_run(&dag, &mut rng);
        // 4 instances × 150 GB × $0.01 = $6.00.
        assert_eq!(sample.data_cost, Cost::from_dollars(6.0));
    }

    #[test]
    fn elastic_beats_static_under_sublinear_scaling() {
        // ResNet-50-shaped scaling: paying for 4 GPUs per trial in late
        // stages buys little speedup, so shrinking is cheaper.
        let scaling = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 1));
        let model = ModelProfile::from_scaling("rn50", scaling, 10, 0.0, 0.0);
        let spec = ExperimentSpec::from_stages(&[(8, 8), (4, 16), (2, 32), (1, 64)]).unwrap();
        let s = Simulator::new(model, cloud_1gpu());
        let static_plan = AllocationPlan::flat(8, 4);
        let elastic = AllocationPlan::new(vec![8, 4, 2, 1]);
        let p_static = s.predict(&spec, &static_plan).unwrap();
        let p_elastic = s.predict(&spec, &elastic).unwrap();
        assert!(
            p_elastic.cost < p_static.cost,
            "elastic {} vs static {}",
            p_elastic.cost,
            p_static.cost
        );
    }

    #[test]
    fn under_linear_scaling_static_matches_elastic_cost_closely() {
        // With ideal scaling and no overheads, GPU-seconds of work are
        // conserved; the static plan is not wasteful (§1's converse case).
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_2XLARGE))
            .with_provision_delay(SimDuration::from_secs(0))
            .with_init_latency(SimDuration::from_secs(0));
        let s = sim(0.0, cloud).with_config(SimConfig {
            samples: 1,
            seed: 0,
            sync_overhead_secs: 0.0,
        });
        let spec = ExperimentSpec::from_stages(&[(4, 60), (2, 60), (1, 60)]).unwrap();
        let p_static = s.predict(&spec, &AllocationPlan::flat(4, 3)).unwrap();
        let p_elastic = s
            .predict(&spec, &AllocationPlan::new(vec![4, 2, 1]))
            .unwrap();
        let a = p_static.cost.as_dollars();
        let b = p_elastic.cost.as_dollars();
        assert!((a - b).abs() / b < 0.05, "static {a} vs elastic {b}");
    }

    /// Re-derives a prediction by walking the full DAG node by node — the
    /// pre-decomposition arithmetic — and checks the stage-composed
    /// predictor against it. The two paths draw identical node latencies
    /// (same counter streams) and differ only in float association, so
    /// they must agree to well under a micro-dollar/microsecond.
    fn full_dag_prediction(
        s: &Simulator,
        spec: &ExperimentSpec,
        plan: &AllocationPlan,
    ) -> (f64, f64) {
        let dag = ExecDag::build(
            spec,
            plan,
            s.model(),
            s.cloud(),
            s.config().sync_overhead_secs,
        )
        .unwrap();
        let mut jct = rb_core::stats::OnlineStats::new();
        let mut cost = rb_core::stats::OnlineStats::new();
        let mut finish = Vec::new();
        let mut duration = Vec::new();
        for i in 0..s.config().samples {
            let seed = Prng::for_stream(s.config().seed, u64::from(i)).next_u64();
            dag.sample_schedule_seeded(seed, &mut finish, &mut duration);
            let sample = s.bill_sample(&dag, &finish, &duration);
            jct.push(sample.jct_secs);
            cost.push(sample.total_cost().as_dollars());
        }
        (jct.mean(), cost.mean())
    }

    #[test]
    fn stage_composed_prediction_matches_full_dag_walk() {
        for per_function in [false, true] {
            let mut cloud = cloud_1gpu();
            if per_function {
                cloud.pricing = cloud.pricing.with_per_function_billing();
            }
            let s = sim(0.7, cloud); // noisy: every node latency distinct
            for gpus in [vec![4, 2, 1], vec![1, 2, 4], vec![3, 2, 1], vec![1, 1, 1]] {
                let plan = AllocationPlan::new(gpus);
                let pred = s.predict(&spec(), &plan).unwrap();
                let (jct, cost) = full_dag_prediction(&s, &spec(), &plan);
                // Tolerances are the storage granularities (SimDuration
                // rounds to milliseconds, Cost to micro-dollars).
                assert!(
                    (pred.jct.as_secs_f64() - jct).abs() < 1e-3,
                    "{plan} per_function={per_function}: jct {} vs {jct}",
                    pred.jct.as_secs_f64()
                );
                assert!(
                    (pred.cost.as_dollars() - cost).abs() < 1e-5,
                    "{plan} per_function={per_function}: cost {} vs {cost}",
                    pred.cost.as_dollars()
                );
            }
        }
    }

    #[test]
    fn predictions_are_deterministic_per_seed() {
        let s = sim(0.5, cloud_1gpu());
        let plan = AllocationPlan::new(vec![4, 2, 1]);
        let a = s.predict(&spec(), &plan).unwrap();
        let b = s.predict(&spec(), &plan).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn minimum_charge_binds_for_tiny_stages() {
        // One 5 s stage on one instance still pays for 60 s.
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_2XLARGE))
            .with_provision_delay(SimDuration::from_secs(0))
            .with_init_latency(SimDuration::from_secs(0));
        let model =
            ModelProfile::from_scaling("tiny", Arc::new(IdealScaling::new(5.0, 1)), 1, 0.0, 0.0);
        let s = Simulator::new(model, cloud).with_config(SimConfig {
            samples: 1,
            seed: 0,
            sync_overhead_secs: 0.0,
        });
        let spec = ExperimentSpec::from_stages(&[(1, 1)]).unwrap();
        let p = s.predict(&spec, &AllocationPlan::flat(1, 1)).unwrap();
        let pr = CloudPricing::on_demand(P3_2XLARGE);
        assert_eq!(p.cost, pr.instance_charge(SimDuration::from_secs(60)));
    }

    #[test]
    fn feasibility_check() {
        let s = sim(0.0, cloud_1gpu());
        let p = s
            .predict(&spec(), &AllocationPlan::new(vec![4, 2, 1]))
            .unwrap();
        assert!(p.feasible(SimDuration::from_secs(153)));
        assert!(!p.feasible(SimDuration::from_secs(152)));
    }

    #[test]
    fn explain_decomposes_duration_and_cost() {
        let s = sim(0.0, cloud_1gpu());
        let spec = spec();
        let plan = AllocationPlan::new(vec![4, 2, 1]);
        let pred = s.predict(&spec, &plan).unwrap();
        let rows = s.explain(&spec, &plan).unwrap();
        assert_eq!(rows.len(), 3);
        // Stage durations sum to the JCT.
        let total: f64 = rows.iter().map(|r| r.duration.as_secs_f64()).sum();
        assert!((total - pred.jct.as_secs_f64()).abs() < 1e-6);
        // Stage costs sum to the compute bill (data cost is zero here).
        let cost: f64 = rows.iter().map(|r| r.cost.as_dollars()).sum();
        assert!((cost - pred.cost.as_dollars()).abs() < 1e-6);
        // Metadata matches the plan.
        assert_eq!(rows[0].instances, 4);
        assert_eq!(rows[2].gpus_per_trial, 1);
    }

    #[test]
    fn explain_per_function_attributes_train_time() {
        let mut cloud = cloud_1gpu();
        cloud.pricing = cloud.pricing.with_per_function_billing();
        let s = sim(0.0, cloud);
        let spec = spec();
        let plan = AllocationPlan::new(vec![4, 2, 1]);
        let pred = s.predict(&spec, &plan).unwrap();
        let rows = s.explain(&spec, &plan).unwrap();
        let cost: f64 = rows.iter().map(|r| r.cost.as_dollars()).sum();
        assert!((cost - pred.cost.as_dollars()).abs() < 1e-6);
        // Stage 0 runs 4 trials, stage 2 one: 4x the train cost.
        assert!(rows[0].cost.as_dollars() > 3.9 * rows[2].cost.as_dollars());
    }
}
