//! Multi-job planning: Hyperband bracket collections (Fig. 6).
//!
//! "A single specification can express a successive halving job, whereas a
//! collection of them can specify Hyperband-based methods as a multi-job."
//! Each bracket is an independent SHA job; RubberBand plans each one
//! separately. Two execution disciplines are supported:
//!
//! * **concurrent** — brackets run side by side on disjoint clusters, all
//!   meeting the shared deadline; total cost is the sum and JCT the max.
//! * **sequential** — brackets run back to back on one (elastic) cluster;
//!   the shared deadline is split across brackets in proportion to each
//!   bracket's cheapest-feasible JCT, then each bracket is planned within
//!   its slice.
//!
//! Brackets fan out over the simulator's worker threads via
//! [`map_indexed`]'s work-stealing chunks — bracket sizes are skewed
//! (bracket 0 plans many more candidates than the last), so dynamic
//! chunk claiming keeps all workers busy. [`PlannerConfig::beam_width`]
//! passes through to every per-bracket descent.

use crate::greedy::{plan_rubberband, GreedyOutcome, PlannerConfig};
use rb_core::par::map_indexed;
use rb_core::{Cost, RbError, Result, SimDuration};
use rb_hpo::ExperimentSpec;
use rb_sim::Simulator;

/// How the brackets of a multi-job share the deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiJobDiscipline {
    /// All brackets run concurrently; each gets the full deadline.
    Concurrent,
    /// Brackets run one after another; the deadline is divided between
    /// them in proportion to their minimal feasible completion times.
    Sequential,
}

/// A planned multi-job.
#[derive(Debug, Clone)]
pub struct MultiJobPlan {
    /// Per-bracket planning outcomes, in input order.
    pub brackets: Vec<GreedyOutcome>,
    /// Per-bracket deadlines used (equal to the shared deadline when
    /// concurrent).
    pub bracket_deadlines: Vec<SimDuration>,
    /// Total predicted cost across brackets.
    pub total_cost: Cost,
    /// Predicted completion time of the whole multi-job.
    pub jct: SimDuration,
}

/// Plans every bracket of a Hyperband-style multi-job under a shared
/// deadline.
///
/// # Errors
///
/// Returns [`RbError::InvalidSpec`] for an empty bracket list and
/// [`RbError::Infeasible`] when a bracket cannot meet its share of the
/// deadline.
pub fn plan_multi_job(
    sim: &Simulator,
    brackets: &[ExperimentSpec],
    deadline: SimDuration,
    discipline: MultiJobDiscipline,
    config: &PlannerConfig,
) -> Result<MultiJobPlan> {
    if brackets.is_empty() {
        return Err(RbError::InvalidSpec("multi-job has no brackets".into()));
    }
    let deadlines: Vec<SimDuration> = match discipline {
        MultiJobDiscipline::Concurrent => vec![deadline; brackets.len()],
        MultiJobDiscipline::Sequential => {
            // Split the deadline proportionally to each bracket's minimal
            // feasible JCT (probed by planning under the full deadline).
            // Brackets are independent jobs, so the probes run in
            // parallel; errors surface in input order.
            let probes = map_indexed(brackets.len(), sim.engine().threads, |i| {
                plan_rubberband(sim, &brackets[i], deadline, config)
            });
            let mut mins = Vec::with_capacity(brackets.len());
            for probe in probes {
                mins.push(probe?.prediction.jct.as_secs_f64().max(1.0));
            }
            let total: f64 = mins.iter().sum();
            if total > deadline.as_secs_f64() {
                return Err(RbError::Infeasible {
                    reason: format!(
                        "brackets need at least {:.0} s back to back, deadline is {deadline}",
                        total
                    ),
                });
            }
            mins.iter().map(|m| deadline.mul_f64(m / total)).collect()
        }
    };
    // Each bracket is planned on its own thread; aggregation below walks
    // the results in input order, so cost/JCT totals are deterministic.
    let planned = map_indexed(brackets.len(), sim.engine().threads, |i| {
        plan_rubberband(sim, &brackets[i], deadlines[i], config)
    });
    let mut outs = Vec::with_capacity(brackets.len());
    let mut total_cost = Cost::ZERO;
    let mut jct = SimDuration::ZERO;
    for out in planned {
        let out = out?;
        total_cost += out.prediction.cost;
        match discipline {
            MultiJobDiscipline::Concurrent => jct = jct.max(out.prediction.jct),
            MultiJobDiscipline::Sequential => jct += out.prediction.jct,
        }
        outs.push(out);
    }
    Ok(MultiJobPlan {
        brackets: outs,
        bracket_deadlines: deadlines,
        total_cost,
        jct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_8XLARGE;
    use rb_cloud::CloudPricing;
    use rb_hpo::hyperband_brackets;
    use rb_profile::{CloudProfile, ModelProfile};
    use rb_scaling::zoo::RESNET50;
    use rb_scaling::AnalyticScaling;
    use rb_sim::SimConfig;
    use std::sync::Arc;

    fn sim() -> Simulator {
        let scaling = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4));
        let model = ModelProfile::from_scaling("rn50", scaling, 10, 2.0, 0.0);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay(SimDuration::from_secs(15))
            .with_init_latency(SimDuration::from_secs(15));
        Simulator::new(model, cloud).with_config(SimConfig {
            samples: 3,
            seed: 5,
            sync_overhead_secs: 1.0,
        })
    }

    fn brackets() -> Vec<ExperimentSpec> {
        hyperband_brackets(1, 27, 3)
            .unwrap()
            .into_iter()
            .map(|(_, s)| s)
            .collect()
    }

    #[test]
    fn concurrent_multi_job_fits_deadline_per_bracket() {
        let plan = plan_multi_job(
            &sim(),
            &brackets(),
            SimDuration::from_mins(90),
            MultiJobDiscipline::Concurrent,
            &PlannerConfig::default(),
        )
        .unwrap();
        assert_eq!(plan.brackets.len(), 4);
        assert!(plan.jct <= SimDuration::from_mins(90));
        for out in &plan.brackets {
            assert!(out.prediction.feasible(SimDuration::from_mins(90)));
        }
        let sum: Cost = plan.brackets.iter().map(|o| o.prediction.cost).sum();
        assert_eq!(plan.total_cost, sum);
    }

    #[test]
    fn sequential_multi_job_splits_the_deadline() {
        let plan = plan_multi_job(
            &sim(),
            &brackets(),
            SimDuration::from_hours(6),
            MultiJobDiscipline::Sequential,
            &PlannerConfig::default(),
        )
        .unwrap();
        let split: SimDuration = plan.bracket_deadlines.iter().copied().sum();
        assert!(split <= SimDuration::from_hours(6) + SimDuration::from_secs(1));
        // End-to-end JCT is the sum of the brackets'.
        let sum: SimDuration = plan.brackets.iter().map(|o| o.prediction.jct).sum();
        assert_eq!(plan.jct, sum);
        assert!(plan.jct <= SimDuration::from_hours(6));
    }

    #[test]
    fn sequential_infeasible_when_brackets_cannot_chain() {
        let err = plan_multi_job(
            &sim(),
            &brackets(),
            SimDuration::from_mins(6),
            MultiJobDiscipline::Sequential,
            &PlannerConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RbError::Infeasible { .. } | RbError::InvalidSpec(_)
        ));
    }

    #[test]
    fn empty_bracket_list_is_rejected() {
        assert!(plan_multi_job(
            &sim(),
            &[],
            SimDuration::from_mins(10),
            MultiJobDiscipline::Concurrent,
            &PlannerConfig::default(),
        )
        .is_err());
    }
}
