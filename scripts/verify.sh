#!/usr/bin/env bash
# Offline verification gate: build, test, bench smoke, dependency guard.
#
# The container has no network access to crates.io, so everything must
# build with `--offline` and no workspace manifest may depend on
# anything outside the workspace. Run from anywhere; operates on the
# repo root.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo"

echo "== guard: no non-path dependencies in workspace manifests =="
# Every [dependencies]/[dev-dependencies] entry must resolve inside the
# workspace (`workspace = true` or `path = ...`). A bare version string
# (e.g. `rand = "0.8"`) would need the registry and must not appear.
bad=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Lines inside dependency tables that neither inherit from the
    # workspace nor point at a path.
    offenders=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies\]$/) }
        in_deps && /^[A-Za-z0-9_-]+[ \t]*=/ \
            && $0 !~ /workspace[ \t]*=[ \t]*true/ \
            && $0 !~ /path[ \t]*=/ { print FILENAME ": " $0 }
    ' "$manifest")
    if [ -n "$offenders" ]; then
        echo "$offenders"
        bad=1
    fi
done
if [ "$bad" -ne 0 ]; then
    echo "FAIL: found dependencies that would require the registry" >&2
    exit 1
fi
echo "ok"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests =="
cargo test -q --offline

echo "== bench smoke =="
cargo run -p rb-bench --release --offline --bin bench -- --smoke
grep -q '"jobs_per_sec"' BENCH_sim.json \
    || { echo "FAIL: BENCH_sim.json has no serve jobs_per_sec"; exit 1; }

echo "== churn smoke (alloc counter + thread-count determinism) =="
churn_out=$(cargo run -p rb-bench --release --offline --features alloc-counter --bin bench -- --churn --smoke)
echo "$churn_out"
echo "$churn_out" | grep -q "alloc-counter: warm predict allocations over 32 calls: 0" \
    || { echo "FAIL: warm predict path allocated"; exit 1; }
echo "$churn_out" | grep -q "plan selection identical across thread counts: true" \
    || { echo "FAIL: churn selection diverged across thread counts"; exit 1; }
grep -q '"plans_per_sec"' BENCH_planner.json \
    || { echo "FAIL: BENCH_planner.json has no plans_per_sec"; exit 1; }

echo "== ext-adapt smoke (seeded; summary must match the expectation) =="
# The sweep is bit-reproducible per seed and the summary line is counts
# only, so it is stable across machines. A drift here means the
# adaptation controller's behaviour changed.
summary=$(mktemp)
cargo run -p rb-bench --release --offline --bin repro -- quick ext-adapt \
    | grep '^ext-adapt summary:' > "$summary"
diff -u scripts/expected_ext_adapt.txt "$summary"
rm -f "$summary"
echo "ok"

echo "== ext-chaos smoke (seeded; summaries must match the expectation) =="
# Hardened executor vs no-retry baseline under seeded fault injection,
# plus the correlated-failure sub-sweep (two-zone outage, open loop vs
# the controller's executed zone switch). The summary lines are counts
# only; a drift means retry/backoff, graceful degradation, checkpoint
# fallback, or market/zone switch-execution behaviour changed.
summary=$(mktemp)
cargo run -p rb-bench --release --offline --bin repro -- quick ext-chaos \
    | grep '^ext-chaos' > "$summary"
diff -u scripts/expected_ext_chaos.txt "$summary"
rm -f "$summary"
echo "ok"

echo "== ext-serve smoke (seeded; summaries must match the expectation) =="
# Multi-tenant service sweeps: serial (tenants x arrival gaps), the
# contended sub-sweep (2 slots, downscaling plans, pool-aware
# admission), and the Hyperband bracket group — every cell run pool-off
# and pool-on at shared seeds. The pinned summaries encode the
# service-layer contract: the pool is cheaper in every pair
# (pool_cheaper == pairs) at equal-or-better median queue wait
# (wait_regressions=0), with no double releases or custody conflicts,
# and the contended cells actually admit queued jobs against parked
# capacity (pool_admits > 0). A drift means the fair-share scheduler,
# the pool lifecycle, pool-aware admission, or the billing accounting
# changed behaviour.
summary=$(mktemp)
cargo run -p rb-bench --release --offline --bin repro -- quick ext-serve \
    | grep '^ext-serve' > "$summary"
diff -u scripts/expected_ext_serve.txt "$summary"
rm -f "$summary"
echo "ok"

echo "== trace smoke (seeded; JSONL schema + RunSummary must match) =="
# One observed adaptive run under drift + spot churn. `repro trace`
# schema-validates the JSONL in-process and ends its output with the
# byte-stable RunSummary; the prediction engine is pinned to one thread
# inside the workload, so the rollup is identical on every machine.
trace_dir=$(mktemp -d)
(cd "$trace_dir" && cargo run --manifest-path "$repo/Cargo.toml" \
    -p rb-bench --release --offline --bin repro -- trace) > "$trace_dir/out.txt"
sed -n '/^run summary:/,$p' "$trace_dir/out.txt" > "$trace_dir/summary.txt"
diff -u scripts/expected_summary.txt "$trace_dir/summary.txt"
for f in trace.jsonl trace.chrome.json; do
    [ -s "$trace_dir/repro_out/$f" ] || { echo "FAIL: missing $f" >&2; exit 1; }
done

echo "== replay determinism (trace.jsonl alone must rebuild the run) =="
# `repro replay` parses repro_out/trace.jsonl with rb-replay — no
# planner, no simulator — reconstructs the ExecutionReport + RunSummary,
# and exits non-zero unless both are bit-identical to a fresh live run.
# Its summary tail must also match the pinned expectation, closing the
# loop: live run, streamed trace, and replayed trace all agree.
(cd "$trace_dir" && cargo run --manifest-path "$repo/Cargo.toml" \
    -p rb-bench --release --offline --bin repro -- replay) > "$trace_dir/replay.txt"
grep -q '^replay: .* bit-for-bit' "$trace_dir/replay.txt" \
    || { echo "FAIL: replay did not report bit-equality" >&2; exit 1; }
sed -n '/^run summary:/,$p' "$trace_dir/replay.txt" > "$trace_dir/replay_summary.txt"
diff -u scripts/expected_summary.txt "$trace_dir/replay_summary.txt"
rm -rf "$trace_dir"
echo "ok"

echo "== fleet rollup (manifests + byte-stable analytics report) =="
# `repro fleet` re-runs the quick ext-adapt/ext-chaos/ext-serve sweeps
# and writes one JSON manifest per run; the rollup CLI aggregates the
# tree into the fleet report. A drift means a sweep's executed numbers
# moved or the rollup's formatting/aggregation changed.
fleet_dir=$(mktemp -d)
(cd "$fleet_dir" && cargo run --manifest-path "$repo/Cargo.toml" \
    -p rb-bench --release --offline --bin repro -- fleet) > "$fleet_dir/fleet.txt"
grep -q '^fleet: wrote' "$fleet_dir/fleet.txt" \
    || { echo "FAIL: fleet wrote no manifests" >&2; exit 1; }
cargo run --manifest-path "$repo/Cargo.toml" -p rb-replay --release --offline \
    --bin rollup -- "$fleet_dir/repro_out/fleet" > "$fleet_dir/rollup.txt"
diff -u scripts/expected_rollup.txt "$fleet_dir/rollup.txt"
rm -rf "$fleet_dir"
echo "ok"

echo "verify: all checks passed"
