//! Typed identifiers.
//!
//! The system juggles trials, stages, workers, cluster nodes, cloud
//! instances and plans — all naturally indexed by small integers. Newtype
//! wrappers make it a compile error to hand a [`TrialId`] to an API that
//! expects a [`NodeId`].

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Creates an identifier from its raw index.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// Returns the raw index.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }
    };
}

define_id!(
    /// Identifies one hyperparameter configuration's training run (a trial).
    TrialId,
    "trial-"
);
define_id!(
    /// Identifies a stage within an experiment specification.
    StageId,
    "stage-"
);
define_id!(
    /// Identifies one data-parallel worker within a trial's gang.
    WorkerId,
    "worker-"
);
define_id!(
    /// Identifies a logical cluster node (a machine with GPU slots).
    NodeId,
    "node-"
);
define_id!(
    /// Identifies a provisioned cloud instance (the billing entity).
    InstanceId,
    "i-"
);
define_id!(
    /// Identifies a candidate resource allocation plan during planning.
    PlanId,
    "plan-"
);

/// A monotonically increasing identifier allocator.
///
/// # Examples
///
/// ```
/// use rb_core::ids::{IdGen, TrialId};
/// let mut gen = IdGen::<TrialId>::new();
/// assert_eq!(gen.next(), TrialId::new(0));
/// assert_eq!(gen.next(), TrialId::new(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdGen<T> {
    next: u64,
    _marker: std::marker::PhantomData<T>,
}

impl<T: From<u64>> IdGen<T> {
    /// Creates an allocator starting at zero.
    pub fn new() -> Self {
        IdGen {
            next: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Returns the next identifier.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> T {
        let id = T::from(self.next);
        self.next += 1;
        id
    }

    /// Returns how many identifiers have been issued.
    pub fn issued(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(TrialId::new(3).to_string(), "trial-3");
        assert_eq!(NodeId::new(0).to_string(), "node-0");
        assert_eq!(InstanceId::new(17).to_string(), "i-17");
        assert_eq!(StageId::new(2).to_string(), "stage-2");
        assert_eq!(WorkerId::new(5).to_string(), "worker-5");
        assert_eq!(PlanId::new(1).to_string(), "plan-1");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(TrialId::new(1) < TrialId::new(2));
        assert_eq!(TrialId::from(7).raw(), 7);
    }

    #[test]
    fn idgen_is_monotonic() {
        let mut g = IdGen::<NodeId>::new();
        let a = g.next();
        let b = g.next();
        assert!(a < b);
        assert_eq!(g.issued(), 2);
    }
}
