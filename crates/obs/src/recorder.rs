//! The [`Recorder`] trait: the single sink every crate reports into.
//!
//! The recorder follows the same discipline as `run()` vs `run_hooked()`
//! in `rb-exec`: instrumentation must never influence the computation it
//! observes. Recorders only *receive* data — they consume no randomness,
//! mutate no simulation state, and are consulted behind
//! [`Recorder::enabled`] guards so the no-op recorder costs a single
//! dynamic call on the hot path. Executor and simulator output is
//! bit-identical whether a [`NoopRecorder`] or a recording sink is
//! attached; tests assert this.
//!
//! All timestamps are **virtual** ([`SimTime`]): the observability layer
//! never reads the wall clock, so traces are reproducible byte-for-byte
//! from a seed.

use rb_core::SimTime;
use std::fmt;
use std::sync::Arc;

/// Which timeline an event belongs to. Lanes become rows ("threads") in
/// the Chrome trace export: one per node, per trial, plus fixed lanes
/// for the controller, the planner, the cloud provider, and per-stage
/// structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// Whole-run events (barriers, run start/end).
    Global,
    /// A cluster node's lifecycle and placements.
    Node(u64),
    /// One trial's training segments.
    Trial(u64),
    /// Per-stage structure (stage spans).
    Stage(u32),
    /// The online adaptation controller (`rb-ctrl`).
    Controller,
    /// The allocation planner (`rb-planner`). Planning happens before
    /// virtual time starts, so planner events are stamped at t=0 and
    /// ordered by sequence number.
    Planner,
    /// The cloud provider (`rb-cloud`): provisioning, billing.
    Cloud,
    /// One tuning job inside a multi-job service (`rb-serve`): its
    /// admission, dispatch, barriers and completion. Interleaved jobs
    /// stay separable because each gets its own lane.
    Job(u64),
    /// One Hyperband bracket inside a multi-bracket run: the bracket's
    /// SHA sub-experiment gets its own lane so bracket sets stay
    /// separable in fleet traces.
    Bracket(u32),
}

impl Lane {
    /// Stable textual form used by the JSONL export (`node:3`,
    /// `trial:7`, `stage:2`, `global`, `controller`, `planner`,
    /// `cloud`).
    pub fn label(&self) -> String {
        match self {
            Lane::Global => "global".to_owned(),
            Lane::Node(id) => format!("node:{id}"),
            Lane::Trial(id) => format!("trial:{id}"),
            Lane::Stage(s) => format!("stage:{s}"),
            Lane::Controller => "controller".to_owned(),
            Lane::Planner => "planner".to_owned(),
            Lane::Cloud => "cloud".to_owned(),
            Lane::Job(id) => format!("job:{id}"),
            Lane::Bracket(b) => format!("bracket:{b}"),
        }
    }
}

/// Identity of one explicit span: monotonically assigned by a
/// [`SpanTracker`], unique within a trace. Explicit spans are emitted as
/// `span_start`/`span_end` *pairs* ([`EventKind::SpanStart`] /
/// [`EventKind::SpanEnd`]), unlike the closed [`EventKind::Span`] which
/// is a single retrospective event. Pairs let a streaming sink flush the
/// start before the outcome is known, and parent links reconstruct the
/// span tree offline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// Assigns [`SpanId`]s monotonically and tracks the open-span stack so
/// nested spans get parent links. Lives in the instrumented code (one
/// per deterministic emission path), not in the recorder: ids are part
/// of the trace contract, so they must not depend on which sink is
/// attached.
#[derive(Debug, Default, Clone)]
pub struct SpanTracker {
    next: u64,
    stack: Vec<SpanId>,
}

impl SpanTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a span: returns its fresh id plus the enclosing open span
    /// (the parent), and pushes it on the stack.
    pub fn open(&mut self) -> (SpanId, Option<SpanId>) {
        let id = SpanId(self.next);
        self.next += 1;
        let parent = self.stack.last().copied();
        self.stack.push(id);
        (id, parent)
    }

    /// Closes the innermost open span and returns its id.
    ///
    /// # Panics
    ///
    /// Panics when no span is open — an unbalanced close is an
    /// instrumentation bug, not a data condition.
    pub fn close(&mut self) -> SpanId {
        self.stack.pop().expect("span close without open")
    }

    /// Number of spans currently open.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

/// A structured field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

/// The shape of an event on its lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A point-in-time occurrence.
    Instant,
    /// An interval `[at, end]` in virtual time (e.g. a training
    /// segment, a stage).
    Span { end: SimTime },
    /// A sampled value on a time series (drift factor, cost-to-date).
    Gauge { value: f64 },
    /// Opens explicit span `span` (closed later by a matching
    /// [`EventKind::SpanEnd`] with the same id). `parent` is the
    /// enclosing open span, if any.
    SpanStart {
        span: SpanId,
        parent: Option<SpanId>,
    },
    /// Closes explicit span `span`.
    SpanEnd { span: SpanId },
}

/// One structured observation, stamped in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual timestamp (span start for [`EventKind::Span`]).
    pub at: SimTime,
    /// Emitting subsystem: `"exec"`, `"sim"`, `"planner"`, `"cloud"`,
    /// `"ctrl"`.
    pub scope: &'static str,
    /// Dotted event name, e.g. `"node.up"`, `"replan.apply"`.
    pub name: &'static str,
    /// Timeline the event belongs to.
    pub lane: Lane,
    pub kind: EventKind,
    /// Structured payload, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

/// Sink for structured events, counters and histograms.
///
/// Implementations must be order-insensitive for counters and
/// histograms (they may be reported from worker threads); the event
/// stream itself is only fed from deterministic single-threaded code
/// paths so that exports are byte-stable.
pub trait Recorder: fmt::Debug + Send + Sync {
    /// Whether events are being kept. Call sites use this to skip
    /// payload construction entirely when a no-op recorder is attached.
    fn enabled(&self) -> bool;

    /// Records a structured event.
    fn record(&self, event: Event);

    /// Adds `delta` to the counter `scope.name`.
    fn counter_add(&self, scope: &'static str, name: &'static str, delta: u64);

    /// Records one observation of the histogram `scope.name`.
    /// Non-finite values are dropped.
    fn histogram(&self, scope: &'static str, name: &'static str, value: f64);

    /// A durability point: sinks that buffer into external storage (the
    /// streaming JSONL sink) push everything written so far through.
    /// In-memory sinks ignore it. The executor calls this at stage
    /// barriers and the service at job completions.
    fn flush(&self) {}

    /// Convenience: records an instant event.
    fn instant(
        &self,
        at: SimTime,
        scope: &'static str,
        name: &'static str,
        lane: Lane,
        fields: Vec<(&'static str, Value)>,
    ) {
        if self.enabled() {
            self.record(Event {
                at,
                scope,
                name,
                lane,
                kind: EventKind::Instant,
                fields,
            });
        }
    }

    /// Convenience: records a `[start, end]` span.
    fn span(
        &self,
        start: SimTime,
        end: SimTime,
        scope: &'static str,
        name: &'static str,
        lane: Lane,
        fields: Vec<(&'static str, Value)>,
    ) {
        if self.enabled() {
            self.record(Event {
                at: start,
                scope,
                name,
                lane,
                kind: EventKind::Span { end },
                fields,
            });
        }
    }

    /// Convenience: opens explicit span `span` (pair it with a later
    /// [`Recorder::span_end`] carrying the same id).
    #[allow(clippy::too_many_arguments)]
    fn span_start(
        &self,
        at: SimTime,
        scope: &'static str,
        name: &'static str,
        lane: Lane,
        span: SpanId,
        parent: Option<SpanId>,
        fields: Vec<(&'static str, Value)>,
    ) {
        if self.enabled() {
            self.record(Event {
                at,
                scope,
                name,
                lane,
                kind: EventKind::SpanStart { span, parent },
                fields,
            });
        }
    }

    /// Convenience: closes explicit span `span`.
    fn span_end(
        &self,
        at: SimTime,
        scope: &'static str,
        name: &'static str,
        lane: Lane,
        span: SpanId,
        fields: Vec<(&'static str, Value)>,
    ) {
        if self.enabled() {
            self.record(Event {
                at,
                scope,
                name,
                lane,
                kind: EventKind::SpanEnd { span },
                fields,
            });
        }
    }

    /// Convenience: records a gauge sample.
    fn gauge(&self, at: SimTime, scope: &'static str, name: &'static str, lane: Lane, value: f64) {
        if self.enabled() {
            self.record(Event {
                at,
                scope,
                name,
                lane,
                kind: EventKind::Gauge { value },
                fields: Vec::new(),
            });
        }
    }
}

/// The do-nothing recorder: every method returns immediately. Attaching
/// it is observationally identical to attaching nothing at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&self, _event: Event) {}
    fn counter_add(&self, _scope: &'static str, _name: &'static str, _delta: u64) {}
    fn histogram(&self, _scope: &'static str, _name: &'static str, _value: f64) {}
}

/// A cloneable, `Debug`-friendly handle to a shared recorder.
///
/// Structs that derive `Clone`/`Debug` (the simulator, the cloud
/// provider) embed this instead of a bare `Arc<dyn Recorder>` so the
/// derive keeps working and the no-op default stays a one-liner.
#[derive(Clone)]
pub struct RecorderHandle {
    inner: Arc<dyn Recorder>,
}

impl RecorderHandle {
    /// Wraps an existing shared recorder.
    pub fn new(inner: Arc<dyn Recorder>) -> Self {
        Self { inner }
    }

    /// A handle to the process-wide no-op recorder.
    pub fn noop() -> Self {
        static NOOP: std::sync::OnceLock<Arc<NoopRecorder>> = std::sync::OnceLock::new();
        let arc = NOOP.get_or_init(|| Arc::new(NoopRecorder)).clone();
        Self { inner: arc }
    }

    /// The underlying recorder.
    pub fn get(&self) -> &dyn Recorder {
        &*self.inner
    }

    /// Clones the underlying `Arc`.
    pub fn share(&self) -> Arc<dyn Recorder> {
        Arc::clone(&self.inner)
    }
}

impl Default for RecorderHandle {
    fn default() -> Self {
        Self::noop()
    }
}

impl fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RecorderHandle({})",
            if self.inner.enabled() {
                "recording"
            } else {
                "noop"
            }
        )
    }
}

impl std::ops::Deref for RecorderHandle {
    type Target = dyn Recorder;
    fn deref(&self) -> &Self::Target {
        &*self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_disabled() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.instant(SimTime::ZERO, "t", "x", Lane::Global, Vec::new());
        rec.counter_add("t", "c", 1);
        rec.histogram("t", "h", 1.0);
    }

    #[test]
    fn lane_labels_are_stable() {
        assert_eq!(Lane::Node(3).label(), "node:3");
        assert_eq!(Lane::Trial(7).label(), "trial:7");
        assert_eq!(Lane::Stage(2).label(), "stage:2");
        assert_eq!(Lane::Global.label(), "global");
        assert_eq!(Lane::Controller.label(), "controller");
        assert_eq!(Lane::Job(5).label(), "job:5");
        assert_eq!(Lane::Bracket(4).label(), "bracket:4");
    }

    #[test]
    fn span_tracker_assigns_monotonic_ids_with_parent_links() {
        let mut t = SpanTracker::new();
        let (run, run_parent) = t.open();
        assert_eq!(run, SpanId(0));
        assert_eq!(run_parent, None);
        let (stage, stage_parent) = t.open();
        assert_eq!(stage, SpanId(1));
        assert_eq!(stage_parent, Some(run));
        assert_eq!(t.depth(), 2);
        assert_eq!(t.close(), stage);
        let (next_stage, p) = t.open();
        assert_eq!(next_stage, SpanId(2), "ids never reused");
        assert_eq!(p, Some(run));
        assert_eq!(t.close(), next_stage);
        assert_eq!(t.close(), run);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "span close without open")]
    fn unbalanced_close_panics() {
        SpanTracker::new().close();
    }

    #[test]
    fn handle_defaults_to_noop() {
        let h = RecorderHandle::default();
        assert!(!h.enabled());
        assert_eq!(format!("{h:?}"), "RecorderHandle(noop)");
    }
}
