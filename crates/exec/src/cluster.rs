//! The cluster manager (§5): elastic scaling against the simulated
//! provider.
//!
//! Extends the provider with the job-side realities the paper models:
//! after the provider hands an instance over (scaling latency), the
//! instance still pays an *initialization latency* (dependency install,
//! joining the cluster) and a one-time dataset download before trials can
//! use it. Billing runs from hand-over to termination; the embedded
//! [`BillingMeter`](rb_cloud::BillingMeter) is the source of truth for
//! "real" cost columns.

use rb_cloud::{
    FaultCounts, FaultPlan, PricingTier, ProviderConfig, SharedPool, SimProvider, UsageRecord,
};
use rb_core::{Cost, InstanceId, NodeId, Prng, RbError, Result, SimDuration, SimTime};
use rb_profile::{CapacityEvents, CloudProfile};
use std::collections::BTreeMap;

/// How the cluster manager survives a misbehaving provider: capped
/// exponential backoff on insufficient-capacity denials, and a
/// per-request hand-over timeout that abandons (cancels, unbilled) and
/// replaces provisioning requests stuck on a straggling instance.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Re-request attempts after the first (capacity denials and
    /// straggler replacements share the budget).
    pub max_retries: u32,
    /// Backoff before the first retry, in seconds; doubles per attempt.
    pub base_backoff_secs: f64,
    /// Backoff ceiling, in seconds.
    pub max_backoff_secs: f64,
    /// A request whose instance has not been handed over this many
    /// seconds after it was issued is abandoned and re-issued.
    pub request_timeout_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff_secs: 10.0,
            max_backoff_secs: 120.0,
            request_timeout_secs: 240.0,
        }
    }
}

impl RetryPolicy {
    /// Checks the policy's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] for negative or non-finite
    /// delays.
    pub fn validate(&self) -> Result<()> {
        for (what, v) in [
            ("base_backoff_secs", self.base_backoff_secs),
            ("max_backoff_secs", self.max_backoff_secs),
            ("request_timeout_secs", self.request_timeout_secs),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(RbError::InvalidConfig(format!(
                    "retry policy: {what} must be finite and non-negative, got {v}"
                )));
            }
        }
        Ok(())
    }

    /// Backoff before retry number `attempt` (1-based): capped
    /// exponential.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let exp = self.base_backoff_secs * 2f64.powi(attempt.saturating_sub(1).min(30) as i32);
        SimDuration::from_secs_f64(exp.min(self.max_backoff_secs))
    }
}

/// A mid-run market/zone move for the cluster to execute at a barrier:
/// every field is optional, so a directive can flip just the pricing
/// tier, just the interruption expectation, just the home zone, or any
/// combination. Executed by [`ClusterManager::switch_market`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SwitchDirective {
    /// Pricing tier for capacity provisioned after the switch (existing
    /// lifetimes are pinned to the old tier).
    pub market: Option<PricingTier>,
    /// Spot-interruption rate for capacity provisioned after the
    /// switch (instances already holding a sampled interruption keep
    /// it).
    pub interruption_rate_per_hour: Option<f64>,
    /// Zone future provisioning lands in. Setting this forces a full
    /// drain: capacity cannot be parked across a zone move.
    pub zone: Option<u32>,
}

impl SwitchDirective {
    /// True when the directive changes nothing.
    pub fn is_empty(&self) -> bool {
        self.market.is_none() && self.interruption_rate_per_hour.is_none() && self.zone.is_none()
    }
}

/// What executing a [`SwitchDirective`] did to the fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchOutcome {
    /// Ready nodes terminated (offered to the shared pool when one is
    /// attached).
    pub drained: usize,
    /// Ready nodes parked warm instead of terminated (market-only
    /// switch where holding is cheaper than re-provisioning).
    pub parked: usize,
    /// In-flight provisioning requests cancelled, never billed.
    pub cancelled: usize,
}

/// What a resilient node request actually achieved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryOutcome {
    /// Nodes acquired (warm reattaches plus fresh provisions kept).
    pub acquired: usize,
    /// Re-request rounds issued (capacity denials + straggler
    /// replacements).
    pub retries: u64,
    /// Stuck provisioning requests cancelled, never billed.
    pub abandoned: u64,
    /// Nodes requested but not acquired after the retry budget ran out.
    pub shortfall: usize,
}

/// A node still being initialized.
#[derive(Debug, Clone, Copy)]
struct PendingNode {
    instance: InstanceId,
    usable_at: SimTime,
}

/// A deprovision-deferred instance kept initialized for fast reattach.
#[derive(Debug, Clone, Copy)]
struct WarmNode {
    node: NodeId,
    instance: InstanceId,
    /// The instance is released for real if not reused by this time.
    expires_at: SimTime,
}

/// Elastic cluster of homogeneous GPU instances.
#[derive(Debug)]
pub struct ClusterManager {
    provider: SimProvider,
    cloud: CloudProfile,
    rng: Prng,
    pending: Vec<PendingNode>,
    ready: BTreeMap<NodeId, InstanceId>,
    /// Warm pool (§6.3.1 runs with "a warm pool of instances"): released
    /// nodes are parked here — still billed — and reattached in
    /// `warm_attach_secs` instead of a full provision+init cycle.
    warm: Vec<WarmNode>,
    warm_capacity: usize,
    warm_hold: SimDuration,
    warm_attach: SimDuration,
    /// Cross-job elastic pool (multi-tenant serving): `(pool, job id,
    /// job group)`. `None` — the default — leaves every code path
    /// bit-identical to a pool-less manager; the executor's legacy
    /// drivers never set it. The group (e.g. one tenant's Hyperband
    /// bracket set) gives this job affinity for same-group parked
    /// capacity at acquisition.
    shared_pool: Option<(SharedPool, u64, Option<u64>)>,
    /// Physical ids of instances adopted from the shared pool, keyed
    /// by this provider's local instance id. A later release of an
    /// adopted instance must be offered under the physical id it
    /// arrived with, so pool ownership stays traceable across
    /// handoffs.
    adopted_physical: BTreeMap<u64, u64>,
    /// Provisioning requests issued to the provider (both request
    /// paths), for the observed capacity-event window.
    provision_requests: u64,
    /// Cumulative retry rounds across all resilient requests.
    provision_retries: u64,
}

impl ClusterManager {
    /// Creates a manager over a fresh provider.
    pub fn new(cloud: CloudProfile, seed: u64) -> Self {
        let provider = SimProvider::new(
            ProviderConfig {
                instance_type: cloud.pricing.instance_type.clone(),
                provision_delay_secs: cloud.provision_delay.clone(),
                quota: None,
                interruption_rate_per_hour: cloud.spot_interruptions_per_hour,
            },
            seed ^ 0xC1A5_7E12,
        );
        ClusterManager {
            provider,
            cloud,
            rng: Prng::seed_from_u64(seed ^ 0x11D0_77E5),
            pending: Vec::new(),
            ready: BTreeMap::new(),
            warm: Vec::new(),
            warm_capacity: 0,
            warm_hold: SimDuration::ZERO,
            warm_attach: SimDuration::from_secs(2),
            shared_pool: None,
            adopted_physical: BTreeMap::new(),
            provision_requests: 0,
            provision_retries: 0,
        }
    }

    /// Routes instance churn through a shared cross-job pool: releases
    /// that would terminate an instance offer it to the pool instead,
    /// and scale-ups adopt pooled capacity before provisioning fresh.
    /// `job` tags this manager's offers for the pool's double-release
    /// guard; `group` (e.g. one tenant's Hyperband bracket set) gives
    /// the job affinity for same-group parked capacity.
    pub fn set_shared_pool(&mut self, pool: SharedPool, job: u64, group: Option<u64>) {
        self.shared_pool = Some((pool, job, group));
    }

    /// Offers a just-terminated instance to the shared pool (no-op
    /// without one). The donor's bill — minimum-charge floor included —
    /// already stands; the pool credits the premium back only if the
    /// instance is actually handed to another job. A conflicting offer
    /// (the pool disputes this job's ownership) is dropped here — the
    /// pool has already counted it and the termination stands either
    /// way.
    fn offer_to_pool(&self, instance: InstanceId, now: SimTime) {
        let Some((pool, job, group)) = &self.shared_pool else {
            return;
        };
        let Some(started) = self.provider.meter().started_at(instance) else {
            // Cancelled while pending: never billed, nothing to donate.
            return;
        };
        let lifetime = now.max(started) - started;
        let (job, group) = (*job, *group);
        let physical = self
            .adopted_physical
            .get(&instance.raw())
            .copied()
            .unwrap_or_else(|| rb_cloud::physical_id(job, instance));
        pool.with(|p| {
            let _ = p.offer(job, group, physical, now, lifetime);
        });
    }

    /// Adopts up to `k` warm instances from the shared pool (no-op
    /// without one). Adopted instances skip provisioning delay, the
    /// init-latency sample (zero RNG draws), and the dataset ingress —
    /// they arrive warm. Returns how many were adopted.
    fn adopt_from_pool(&mut self, k: usize, now: SimTime) -> usize {
        if k == 0 {
            return 0;
        }
        let Some((pool, job, group)) = &self.shared_pool else {
            return 0;
        };
        let (job, group) = (*job, *group);
        let pool = pool.clone();
        let dataset_gb = self.cloud.dataset_gb;
        let grants = pool.with(|p| p.acquire(job, now, k, dataset_gb, group));
        for grant in &grants {
            let instance = self.provider.adopt_running(now);
            self.adopted_physical.insert(instance.raw(), grant.physical);
            self.pending.push(PendingNode {
                instance,
                usable_at: grant.usable_at,
            });
        }
        grants.len()
    }

    /// Installs a recorder on the embedded provider: provision,
    /// termination and preemption events flow onto the unified trace
    /// bus. A no-op recorder (the default) costs nothing.
    pub fn set_recorder(&mut self, recorder: rb_obs::RecorderHandle) {
        self.provider.set_recorder(recorder);
    }

    /// Enables a warm pool: up to `capacity` released nodes are held
    /// (billed) for `hold`, and reattach in `attach` instead of a full
    /// provision + initialization cycle.
    pub fn with_warm_pool(
        mut self,
        capacity: usize,
        hold: SimDuration,
        attach: SimDuration,
    ) -> Self {
        self.warm_capacity = capacity;
        self.warm_hold = hold;
        self.warm_attach = attach;
        self
    }

    /// Releases warm nodes whose hold expired by `now` back to the
    /// provider (their billing stops at expiry).
    fn expire_warm(&mut self, now: SimTime) {
        let mut keep = Vec::with_capacity(self.warm.len());
        for w in self.warm.drain(..) {
            if w.expires_at <= now {
                self.provider
                    .terminate(w.instance, w.expires_at)
                    .expect("warm instance is running");
            } else {
                keep.push(w);
            }
        }
        self.warm = keep;
    }

    /// Number of instances currently parked warm.
    pub fn warm_count(&self) -> usize {
        self.warm.len()
    }

    /// GPUs on each node.
    pub fn gpus_per_node(&self) -> u32 {
        self.cloud.gpus_per_instance()
    }

    /// Requests `k` new instances at `now`. Each becomes usable after its
    /// provisioning delay plus a sampled initialization latency; its
    /// dataset ingress is charged immediately on hand-over.
    ///
    /// # Errors
    ///
    /// Propagates provider errors (e.g. quota).
    pub fn request_nodes(&mut self, k: usize, now: SimTime) -> Result<()> {
        self.expire_warm(now);
        // Reattach from the warm pool first (most recently parked first).
        let mut k = k;
        while k > 0 {
            let Some(w) = self.warm.pop() else { break };
            self.pending.push(PendingNode {
                instance: w.instance,
                usable_at: now + self.warm_attach,
            });
            k -= 1;
        }
        k -= self.adopt_from_pool(k, now);
        if k == 0 {
            return Ok(());
        }
        self.provision_requests += 1;
        let handles = self.provider.provision(k, now)?;
        for (instance, ready_at) in handles {
            let init = SimDuration::from_secs_f64(self.cloud.init_latency.sample(&mut self.rng));
            self.provider
                .meter_mut()
                .record_ingress(self.cloud.dataset_gb);
            self.pending.push(PendingNode {
                instance,
                usable_at: ready_at + init,
            });
        }
        Ok(())
    }

    /// Arms the embedded provider's fault injector (see
    /// [`rb_cloud::FaultPlan`]). An inactive plan leaves the provider
    /// untouched and the run bit-identical.
    pub fn set_fault_plan(&mut self, plan: FaultPlan, seed: u64) {
        self.provider.set_fault_plan(plan, seed);
    }

    /// Faults the provider has injected so far.
    pub fn fault_counts(&self) -> FaultCounts {
        self.provider.fault_counts()
    }

    /// The observed capacity-event window since the start of the run:
    /// requests issued, denials (independent + zone-correlated), retry
    /// rounds spent, and zone-outage kills. Feed to
    /// [`CloudProfile::risk_from_events`] to price observed capacity
    /// risk into residual re-plans.
    pub fn capacity_events(&self) -> CapacityEvents {
        let c = self.fault_counts();
        CapacityEvents {
            requests: self.provision_requests,
            denials: c.capacity_failures + c.zone_denials,
            retries: self.provision_retries,
            outage_kills: c.zone_outage_kills,
        }
    }

    /// The zone future provisioning requests land in.
    pub fn home_zone(&self) -> u32 {
        self.provider.home_zone()
    }

    /// Number of failure domains the armed fault plan declares (1
    /// without zone chaos).
    pub fn num_zones(&self) -> u32 {
        self.provider.num_zones()
    }

    /// Moves future provisioning to `zone` (wrapped into the declared
    /// zone count). Existing nodes stay where they are.
    pub fn set_home_zone(&mut self, zone: u32) {
        self.provider.set_home_zone(zone);
    }

    /// The zone a ready node's instance lives in (zone 0 for unknown
    /// nodes).
    pub fn node_zone(&self, node: NodeId) -> u32 {
        self.ready
            .get(&node)
            .map_or(0, |i| self.provider.instance_zone(*i))
    }

    /// Executes a mid-run market/zone switch: pins every lifetime
    /// bought so far to the old pricing tier, applies the directive to
    /// the profile and provider, and drains the current fleet so the
    /// next scale-up lands on the new market/zone.
    ///
    /// Drain policy: in-flight provisioning requests are cancelled
    /// (free — billing never started). Ready nodes are *parked warm*
    /// when the switch is market-only and holding them for the warm
    /// window costs no more than re-provisioning on the new market
    /// (`old_hourly × warm_hold ≤ new_hourly × mean_scale_up`);
    /// otherwise they are terminated — offered to the shared pool when
    /// one is attached, so pool custody survives the switch. A zone
    /// move never parks (capacity cannot be parked across domains),
    /// but a zone-only move keeps ready nodes already in the target
    /// zone — re-buying capacity that is already where the directive
    /// wants it would pay a scale-up cycle for nothing.
    ///
    /// The caller is responsible for checkpoint safety: pause and save
    /// before switching (the executor's forced-barrier path does).
    ///
    /// # Errors
    ///
    /// Propagates provider errors from the drain.
    pub fn switch_market(
        &mut self,
        directive: &SwitchDirective,
        now: SimTime,
    ) -> Result<SwitchOutcome> {
        let mut outcome = SwitchOutcome::default();
        if directive.is_empty() {
            return Ok(outcome);
        }
        let old_tier = self.cloud.pricing.tier;
        let old_hourly = self.cloud.pricing.instance_hourly();
        self.provider.meter_mut().pin_existing_lifetimes(old_tier);
        if let Some(tier) = directive.market {
            self.cloud.pricing = self.cloud.pricing.clone().with_tier(tier);
        }
        if let Some(rate) = directive.interruption_rate_per_hour {
            self.cloud.spot_interruptions_per_hour = rate;
            self.provider.set_interruption_rate(rate);
        }
        if let Some(zone) = directive.zone {
            self.provider.set_home_zone(zone);
        }
        // Cancel in-flight requests: they were aimed at the old
        // market/zone and have not started billing.
        for p in std::mem::take(&mut self.pending) {
            if self.provider.meter().started_at(p.instance).is_none() {
                self.provider.terminate(p.instance, now)?;
                outcome.cancelled += 1;
            } else {
                // Already handed over (e.g. a warm reattach): drain it
                // like a ready node below.
                self.provider.terminate(p.instance, now)?;
                self.offer_to_pool(p.instance, now);
                outcome.drained += 1;
            }
        }
        let park_ok = directive.zone.is_none()
            && self.warm_capacity > 0
            && old_hourly.per_hour_for(self.warm_hold)
                <= self
                    .cloud
                    .pricing
                    .instance_hourly()
                    .per_hour_for(SimDuration::from_secs_f64(self.cloud.mean_scale_up_secs()));
        // A zone-only move keeps nodes that already escaped into the
        // target zone (a retry round may have provisioned them there):
        // they are exactly where the directive wants capacity, and
        // re-buying them would pay a scale-up cycle for nothing.
        let keep_zone = directive.market.is_none().then_some(directive.zone).flatten();
        for (node, instance) in std::mem::take(&mut self.ready) {
            if keep_zone.is_some_and(|z| self.provider.instance_zone(instance) == z) {
                self.ready.insert(node, instance);
            } else if park_ok && self.warm.len() < self.warm_capacity {
                self.warm.push(WarmNode {
                    node,
                    instance,
                    expires_at: now + self.warm_hold,
                });
                outcome.parked += 1;
            } else {
                self.provider.terminate(instance, now)?;
                self.offer_to_pool(instance, now);
                outcome.drained += 1;
            }
        }
        Ok(outcome)
    }

    /// The compute slowdown factor of a degraded node (1.0 for healthy
    /// or unknown nodes).
    pub fn node_slowdown(&self, node: NodeId) -> f64 {
        self.ready
            .get(&node)
            .map_or(1.0, |i| self.provider.node_slowdown(*i))
    }

    /// Like [`request_nodes`](Self::request_nodes), but survives a faulty
    /// provider: insufficient-capacity denials are retried under the
    /// policy's capped exponential backoff, and requests whose instance
    /// has not been handed over by the per-request timeout are abandoned
    /// (cancelled while still pending — never billed) and re-issued.
    /// Never fails on capacity; instead reports what it could not get as
    /// [`RetryOutcome::shortfall`].
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] for a malformed policy;
    /// non-capacity provider errors (e.g. quota) propagate.
    pub fn request_nodes_resilient(
        &mut self,
        k: usize,
        now: SimTime,
        policy: &RetryPolicy,
    ) -> Result<RetryOutcome> {
        policy.validate()?;
        self.expire_warm(now);
        let mut out = RetryOutcome::default();
        let mut remaining = k;
        // Warm reattaches cannot fail; take them first.
        while remaining > 0 {
            let Some(w) = self.warm.pop() else { break };
            self.pending.push(PendingNode {
                instance: w.instance,
                usable_at: now + self.warm_attach,
            });
            remaining -= 1;
            out.acquired += 1;
        }
        let adopted = self.adopt_from_pool(remaining, now);
        remaining -= adopted;
        out.acquired += adopted;
        let mut attempt: u32 = 0;
        let mut t = now;
        // Retries rotate through failure domains: a denial or abandoned
        // straggler in one zone re-issues the request in the next, so a
        // zone-correlated event (brownout, outage) cannot starve the
        // whole retry budget. The rotation is transient — the home zone
        // is restored on exit; a *persistent* move is the controller's
        // executed switch, not the retry loop's.
        let home_zone = self.provider.home_zone();
        let num_zones = self.provider.num_zones();
        while remaining > 0 {
            self.provision_requests += 1;
            match self.provider.provision(remaining, t) {
                Ok(handles) => {
                    let deadline =
                        t.saturating_add(SimDuration::from_secs_f64(policy.request_timeout_secs));
                    let mut kept = 0usize;
                    for (instance, ready_at) in handles {
                        if ready_at > deadline {
                            // Stuck on a straggler: cancel while still
                            // pending (free — billing only ever starts
                            // at hand-over, so the abandoned node is
                            // never billed even if its replacement
                            // succeeds elsewhere) and re-issue below.
                            self.provider.terminate(instance, deadline)?;
                            out.abandoned += 1;
                            continue;
                        }
                        let init = SimDuration::from_secs_f64(
                            self.cloud.init_latency.sample(&mut self.rng),
                        );
                        self.provider
                            .meter_mut()
                            .record_ingress(self.cloud.dataset_gb);
                        self.pending.push(PendingNode {
                            instance,
                            usable_at: ready_at + init,
                        });
                        kept += 1;
                    }
                    remaining -= kept;
                    out.acquired += kept;
                    if remaining == 0 || attempt >= policy.max_retries {
                        break;
                    }
                    attempt += 1;
                    out.retries += 1;
                    // Replacements go out the moment the stuck requests
                    // are abandoned — in the next zone over.
                    t = deadline;
                    self.rotate_zone(num_zones);
                }
                Err(RbError::Capacity(_)) => {
                    if attempt >= policy.max_retries {
                        break;
                    }
                    attempt += 1;
                    out.retries += 1;
                    // Saturating: extreme user-supplied backoff bounds
                    // must stall the clock at the horizon, not overflow
                    // the millisecond counter.
                    t = t.saturating_add(policy.backoff(attempt));
                    self.rotate_zone(num_zones);
                }
                Err(e) => {
                    self.provider.set_home_zone(home_zone);
                    self.provision_retries += out.retries;
                    return Err(e);
                }
            }
        }
        self.provider.set_home_zone(home_zone);
        self.provision_retries += out.retries;
        out.shortfall = remaining;
        Ok(out)
    }

    /// Advances the provider's home zone to the next failure domain
    /// (no-op in a single-zone region).
    fn rotate_zone(&mut self, num_zones: u32) {
        if num_zones > 1 {
            self.provider
                .set_home_zone((self.provider.home_zone() + 1) % num_zones);
        }
    }

    /// The instant every currently pending node becomes usable, if any
    /// are pending. The executor's stage barrier waits for this.
    pub fn pending_ready_time(&self) -> Option<SimTime> {
        self.pending.iter().map(|p| p.usable_at).max()
    }

    /// Promotes pending nodes whose initialization finished by `now` into
    /// the ready set. Returns the newly usable node ids.
    pub fn absorb_ready(&mut self, now: SimTime) -> Vec<NodeId> {
        // The provider marks hand-over (billing start) for anything whose
        // provisioning completed; initialization may still be running.
        self.provider.poll_ready(now);
        let mut new_nodes = Vec::new();
        let mut still_pending = Vec::new();
        for p in self.pending.drain(..) {
            if p.usable_at <= now {
                let node = NodeId::new(p.instance.raw());
                self.ready.insert(node, p.instance);
                new_nodes.push(node);
            } else {
                still_pending.push(p);
            }
        }
        self.pending = still_pending;
        new_nodes
    }

    /// The usable nodes, in id order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.ready.keys().copied().collect()
    }

    /// Number of usable nodes.
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// Number of requested-but-not-yet-usable nodes.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Terminates the given nodes at `now`, ending their billing.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Execution`] if a node is unknown; provider
    /// errors propagate.
    pub fn terminate_nodes(&mut self, nodes: &[NodeId], now: SimTime) -> Result<()> {
        self.expire_warm(now);
        for &node in nodes {
            let instance = self
                .ready
                .remove(&node)
                .ok_or_else(|| RbError::Execution(format!("terminating unknown node {node}")))?;
            if self.warm.len() < self.warm_capacity {
                // Park instead of releasing: stays billed, reattaches fast.
                self.warm.push(WarmNode {
                    node,
                    instance,
                    expires_at: now + self.warm_hold,
                });
            } else {
                self.provider.terminate(instance, now)?;
                self.offer_to_pool(instance, now);
            }
        }
        Ok(())
    }

    /// Terminates everything at `now` (job teardown), including warm
    /// nodes (billed up to `now` or their earlier expiry).
    pub fn terminate_all(&mut self, now: SimTime) {
        for w in std::mem::take(&mut self.warm) {
            let at = now.min(w.expires_at);
            let _ = w.node;
            self.provider
                .terminate(w.instance, at)
                .expect("warm instance is running");
            self.offer_to_pool(w.instance, at);
        }
        // Pending instances may still be mid-provisioning; release the
        // ready ones and let any pending ones be cancelled by marking them
        // ready first (their billing started at hand-over regardless).
        self.provider
            .poll_ready(now + SimDuration::from_hours(24 * 365));
        let end = now.max(self.latest_handover());
        if self.shared_pool.is_some() {
            // Under a shared pool, end-of-job capacity is donated rather
            // than discarded: another queued job may be about to scale up.
            for instance in self.provider.running_ids() {
                self.provider
                    .terminate(instance, end)
                    .expect("running instance must terminate cleanly");
                self.offer_to_pool(instance, end);
            }
        }
        self.provider.terminate_all(end);
        self.ready.clear();
        self.pending.clear();
    }

    fn latest_handover(&self) -> SimTime {
        self.pending
            .iter()
            .map(|p| p.usable_at)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// The instant the spot market will reclaim `node`, if pre-emptible
    /// and still alive.
    pub fn preemption_time(&self, node: NodeId) -> Option<SimTime> {
        let instance = self.ready.get(&node)?;
        self.provider.preemption_time(*instance)
    }

    /// Reclaims a spot node at its sampled interruption instant, stopping
    /// its billing there and removing it from the ready set.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Execution`] for unknown nodes; provider errors
    /// (already reclaimed, no interruption scheduled) propagate.
    pub fn preempt_node(&mut self, node: NodeId) -> Result<SimTime> {
        let instance = self
            .ready
            .remove(&node)
            .ok_or_else(|| RbError::Execution(format!("preempting unknown node {node}")))?;
        self.provider.preempt(instance)
    }

    /// Records a function-granularity usage event (for per-function
    /// billing and utilization accounting).
    pub fn record_usage(&mut self, gpus: u32, duration: SimDuration) {
        self.provider
            .meter_mut()
            .record_usage(UsageRecord { gpus, duration });
    }

    /// The compute + data bill as of `now`, under the profile's billing
    /// model.
    pub fn total_cost(&self, now: SimTime) -> Cost {
        self.provider.meter().total_cost(&self.cloud.pricing, now)
    }

    /// The compute-only bill as of `now`.
    pub fn compute_cost(&self, now: SimTime) -> Cost {
        self.provider.meter().compute_cost(&self.cloud.pricing, now)
    }

    /// The data-ingress bill.
    pub fn data_cost(&self) -> Cost {
        self.provider.meter().data_cost(&self.cloud.pricing)
    }

    /// Cluster GPU utilization (busy GPU-time / held GPU-time) as of `now`.
    pub fn utilization(&self, now: SimTime) -> Option<f64> {
        self.provider.meter().utilization(now, self.gpus_per_node())
    }

    /// Total instance-seconds held (billed) as of `now`, open instances
    /// accruing. Dividing observed preemptions by this (in hours) gives
    /// an online estimate of the spot interruption rate.
    pub fn held_instance_seconds(&self, now: SimTime) -> f64 {
        self.provider.meter().held_instance_seconds(now)
    }

    /// Instances ever provisioned.
    pub fn instances_provisioned(&self) -> usize {
        self.provider.meter().instances_started()
    }

    /// The billing meter's cumulative spend curve as of `now` (see
    /// [`rb_cloud::BillingMeter::cost_timeline`]).
    pub fn cost_timeline(&self, now: SimTime) -> Vec<(SimTime, Cost)> {
        self.provider
            .meter()
            .cost_timeline(&self.cloud.pricing, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_8XLARGE;
    use rb_cloud::CloudPricing;

    fn cloud() -> CloudProfile {
        CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay(SimDuration::from_secs(15))
            .with_init_latency(SimDuration::from_secs(15))
    }

    #[test]
    fn nodes_become_usable_after_provision_plus_init() {
        let mut cm = ClusterManager::new(cloud(), 1);
        cm.request_nodes(2, SimTime::ZERO).unwrap();
        assert_eq!(cm.pending_count(), 2);
        assert_eq!(cm.pending_ready_time(), Some(SimTime::from_secs(30)));
        assert!(cm.absorb_ready(SimTime::from_secs(29)).is_empty());
        let nodes = cm.absorb_ready(SimTime::from_secs(30));
        assert_eq!(nodes.len(), 2);
        assert_eq!(cm.ready_count(), 2);
        assert_eq!(cm.pending_count(), 0);
    }

    #[test]
    fn billing_covers_init_but_not_queue_delay() {
        let mut cm = ClusterManager::new(cloud(), 1);
        cm.request_nodes(1, SimTime::ZERO).unwrap();
        let t = SimTime::from_secs(30);
        let nodes = cm.absorb_ready(t);
        // Hold for 1 hour after becoming usable, then terminate.
        let end = t + SimDuration::from_hours(1);
        cm.terminate_nodes(&nodes, end).unwrap();
        // Billed from hand-over (15 s) to end (3630 s): 3615 s.
        let expect =
            CloudPricing::on_demand(P3_8XLARGE).instance_charge(SimDuration::from_secs(3615));
        assert_eq!(cm.compute_cost(end), expect);
    }

    #[test]
    fn ingress_charged_per_instance() {
        let mut cloud = cloud().with_dataset_gb(150.0);
        cloud.pricing = cloud.pricing.with_data_price(Cost::from_dollars(0.01));
        let mut cm = ClusterManager::new(cloud, 1);
        cm.request_nodes(3, SimTime::ZERO).unwrap();
        assert_eq!(cm.data_cost(), Cost::from_dollars(4.50));
    }

    #[test]
    fn terminate_unknown_node_errors() {
        let mut cm = ClusterManager::new(cloud(), 1);
        assert!(cm
            .terminate_nodes(&[NodeId::new(9)], SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn usage_drives_per_function_cost_and_utilization() {
        let mut profile = cloud();
        profile.pricing = profile.pricing.with_per_function_billing();
        let mut cm = ClusterManager::new(profile, 1);
        cm.request_nodes(1, SimTime::ZERO).unwrap();
        let t = SimTime::from_secs(30);
        cm.absorb_ready(t);
        cm.record_usage(2, SimDuration::from_secs(1800));
        let end = t + SimDuration::from_secs(3600);
        // Per-function: 2 GPUs × 0.5 h = a quarter of the 4-GPU instance
        // hourly price.
        assert_eq!(cm.compute_cost(end), P3_8XLARGE.on_demand_hourly / 4);
        // Utilization: 3600 GPU-s busy of (3615 s × 4 GPUs) held.
        let u = cm.utilization(end).unwrap();
        assert!((u - 3600.0 / (3615.0 * 4.0)).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn terminate_all_cleans_up() {
        let mut cm = ClusterManager::new(cloud(), 1);
        cm.request_nodes(2, SimTime::ZERO).unwrap();
        cm.absorb_ready(SimTime::from_secs(30));
        cm.request_nodes(1, SimTime::from_secs(40)).unwrap();
        cm.terminate_all(SimTime::from_secs(100));
        assert_eq!(cm.ready_count(), 0);
        assert_eq!(cm.pending_count(), 0);
        assert_eq!(cm.instances_provisioned(), 3);
    }

    #[test]
    fn warm_pool_reattaches_quickly_and_keeps_billing() {
        let mut cm = ClusterManager::new(cloud(), 1).with_warm_pool(
            2,
            SimDuration::from_secs(300),
            SimDuration::from_secs(2),
        );
        cm.request_nodes(2, SimTime::ZERO).unwrap();
        let nodes = cm.absorb_ready(SimTime::from_secs(30));
        // Release both: they park warm instead of terminating.
        cm.terminate_nodes(&nodes, SimTime::from_secs(100)).unwrap();
        assert_eq!(cm.ready_count(), 0);
        assert_eq!(cm.warm_count(), 2);
        // Re-request within the hold: ready after 2 s, not 30 s.
        cm.request_nodes(2, SimTime::from_secs(150)).unwrap();
        assert_eq!(cm.pending_ready_time(), Some(SimTime::from_secs(152)));
        cm.absorb_ready(SimTime::from_secs(152));
        assert_eq!(cm.ready_count(), 2);
        assert_eq!(cm.warm_count(), 0);
        // No new instances were provisioned.
        assert_eq!(cm.instances_provisioned(), 2);
        // Billing covered the warm interval: both instances still open.
        let end = SimTime::from_secs(252);
        cm.terminate_all(end);
        let expect =
            CloudPricing::on_demand(P3_8XLARGE).instance_charge(SimDuration::from_secs(252 - 15));
        assert_eq!(cm.compute_cost(end), expect * 2);
    }

    #[test]
    fn warm_pool_expires_and_stops_billing() {
        let mut cm = ClusterManager::new(cloud(), 1).with_warm_pool(
            1,
            SimDuration::from_secs(60),
            SimDuration::from_secs(2),
        );
        cm.request_nodes(1, SimTime::ZERO).unwrap();
        let nodes = cm.absorb_ready(SimTime::from_secs(30));
        cm.terminate_nodes(&nodes, SimTime::from_secs(100)).unwrap();
        // Past the hold: the next request provisions fresh capacity and the
        // warm instance's billing stopped at its expiry (t=160).
        cm.request_nodes(1, SimTime::from_secs(400)).unwrap();
        assert_eq!(cm.warm_count(), 0);
        assert_eq!(
            cm.pending_ready_time(),
            Some(SimTime::from_secs(430)),
            "fresh provision pays the full 30 s"
        );
        let ready = cm.absorb_ready(SimTime::from_secs(430));
        assert_eq!(cm.instances_provisioned(), 2);
        cm.terminate_nodes(&ready, SimTime::from_secs(500)).unwrap();
        // First instance billed 15..160 (145 s), second 415..500 (85 s)...
        // but the second parks warm again (capacity 1), so bill to its end:
        cm.terminate_all(SimTime::from_secs(520));
        let pr = CloudPricing::on_demand(P3_8XLARGE);
        let expect = pr.instance_charge(SimDuration::from_secs(145))
            + pr.instance_charge(SimDuration::from_secs(520 - 415));
        assert_eq!(cm.compute_cost(SimTime::from_secs(520)), expect);
    }

    #[test]
    fn retry_policy_backoff_is_capped_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), SimDuration::from_secs(10));
        assert_eq!(p.backoff(2), SimDuration::from_secs(20));
        assert_eq!(p.backoff(3), SimDuration::from_secs(40));
        assert_eq!(p.backoff(10), SimDuration::from_secs(120));
        assert!(RetryPolicy {
            base_backoff_secs: -1.0,
            ..RetryPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            request_timeout_secs: f64::NAN,
            ..RetryPolicy::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn resilient_requests_match_legacy_without_faults() {
        let mut legacy = ClusterManager::new(cloud(), 9);
        legacy.request_nodes(3, SimTime::ZERO).unwrap();
        let mut resilient = ClusterManager::new(cloud(), 9);
        let out = resilient
            .request_nodes_resilient(3, SimTime::ZERO, &RetryPolicy::default())
            .unwrap();
        assert_eq!(
            out,
            RetryOutcome {
                acquired: 3,
                ..RetryOutcome::default()
            }
        );
        assert_eq!(legacy.pending_ready_time(), resilient.pending_ready_time());
    }

    #[test]
    fn capacity_denials_are_retried_with_backoff() {
        let mut cm = ClusterManager::new(cloud(), 7);
        cm.set_fault_plan(
            FaultPlan {
                capacity_failure_prob: 0.5,
                ..FaultPlan::none()
            },
            42,
        );
        let policy = RetryPolicy {
            max_retries: 20,
            ..RetryPolicy::default()
        };
        let out = cm
            .request_nodes_resilient(2, SimTime::ZERO, &policy)
            .unwrap();
        assert_eq!(out.shortfall, 0);
        assert_eq!(out.acquired, 2);
        assert_eq!(out.retries, cm.fault_counts().capacity_failures);
        // Backoff pushed the successful request later than a clean one.
        if out.retries > 0 {
            assert!(cm.pending_ready_time().unwrap() > SimTime::from_secs(30));
        }
    }

    #[test]
    fn exhausted_retries_report_shortfall_not_an_error() {
        let mut cm = ClusterManager::new(cloud(), 7);
        cm.set_fault_plan(
            FaultPlan {
                capacity_failure_prob: 1.0,
                ..FaultPlan::none()
            },
            42,
        );
        let policy = RetryPolicy {
            max_retries: 3,
            ..RetryPolicy::default()
        };
        let out = cm
            .request_nodes_resilient(2, SimTime::ZERO, &policy)
            .unwrap();
        assert_eq!(out.shortfall, 2);
        assert_eq!(out.acquired, 0);
        assert_eq!(out.retries, 3);
        assert_eq!(cm.instances_provisioned(), 0);
    }

    #[test]
    fn stragglers_are_abandoned_unbilled_and_replaced() {
        let mut cm = ClusterManager::new(cloud(), 7);
        // Every instance straggles 100×: 1500 s hand-over vs a 240 s
        // request timeout, so each round is abandoned and re-issued.
        cm.set_fault_plan(
            FaultPlan {
                straggler_prob: 1.0,
                straggler_factor: 100.0,
                ..FaultPlan::none()
            },
            42,
        );
        let policy = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        let out = cm
            .request_nodes_resilient(1, SimTime::ZERO, &policy)
            .unwrap();
        assert_eq!(out.shortfall, 1);
        assert_eq!(out.abandoned, 3, "initial attempt + 2 retries");
        assert_eq!(out.retries, 2);
        // Cancelled-while-pending instances never start billing.
        assert_eq!(cm.instances_provisioned(), 0);
        assert_eq!(cm.compute_cost(SimTime::from_secs(7200)), Cost::ZERO);
    }

    #[test]
    fn extreme_backoff_bounds_saturate_instead_of_overflowing() {
        // A pathological policy whose per-retry backoff saturates the
        // millisecond clock: repeated accumulation must stall at the
        // horizon, not overflow (this used to panic in debug builds).
        let mut cm = ClusterManager::new(cloud(), 7);
        cm.set_fault_plan(
            FaultPlan {
                capacity_failure_prob: 1.0,
                ..FaultPlan::none()
            },
            42,
        );
        let policy = RetryPolicy {
            max_retries: 40,
            base_backoff_secs: 1e15,
            max_backoff_secs: 1e18,
            request_timeout_secs: 240.0,
        };
        let out = cm
            .request_nodes_resilient(2, SimTime::ZERO, &policy)
            .unwrap();
        assert_eq!(out.shortfall, 2);
        assert_eq!(out.retries, 40);
    }

    fn zoned_plan(brownout_factor: f64, outage: bool) -> FaultPlan {
        use rb_cloud::{ZonePlan, ZoneWindow};
        let window = ZoneWindow {
            zone: 0,
            start_secs: 0.0,
            duration_secs: 1000.0,
        };
        FaultPlan {
            zones: ZonePlan {
                zones: 2,
                brownout: (brownout_factor > 1.0).then_some(window),
                brownout_delay_factor: brownout_factor.max(1.0),
                outage: outage.then_some(window),
                ..ZonePlan::none()
            },
            ..FaultPlan::none()
        }
    }

    #[test]
    fn abandoned_node_stays_free_when_the_retry_succeeds_in_another_zone() {
        let mut cm = ClusterManager::new(cloud(), 7);
        // Zone 0 brownout inflates the 15 s hand-over to 1500 s — past
        // the 240 s request timeout — so the first request is abandoned
        // and the retry rotates into healthy zone 1.
        cm.set_fault_plan(zoned_plan(100.0, false), 42);
        let out = cm
            .request_nodes_resilient(1, SimTime::ZERO, &RetryPolicy::default())
            .unwrap();
        assert_eq!(
            out,
            RetryOutcome {
                acquired: 1,
                retries: 1,
                abandoned: 1,
                shortfall: 0,
            }
        );
        // Replacement issued at the 240 s deadline, lands 15+15 s later.
        assert_eq!(cm.pending_ready_time(), Some(SimTime::from_secs(270)));
        let nodes = cm.absorb_ready(SimTime::from_secs(270));
        assert_eq!(cm.node_zone(nodes[0]), 1);
        // The abandoned node never started billing and is not an
        // instance start; only the zone-1 replacement is.
        assert_eq!(cm.instances_provisioned(), 1);
        // Retry rounds counted exactly once despite abandon + re-issue.
        assert_eq!(cm.capacity_events().retries, 1);
        // The transient rotation restored the home zone.
        assert_eq!(cm.home_zone(), 0);
        // Bill: only the replacement, from its hand-over at t=255.
        let end = SimTime::from_secs(255 + 3600);
        cm.terminate_all(end);
        let expect =
            CloudPricing::on_demand(P3_8XLARGE).instance_charge(SimDuration::from_secs(3600));
        assert_eq!(cm.compute_cost(end), expect);
    }

    #[test]
    fn zone_outage_denial_retries_into_the_next_zone() {
        let mut cm = ClusterManager::new(cloud(), 7);
        cm.set_fault_plan(zoned_plan(1.0, true), 42);
        let out = cm
            .request_nodes_resilient(2, SimTime::ZERO, &RetryPolicy::default())
            .unwrap();
        assert_eq!(
            out,
            RetryOutcome {
                acquired: 2,
                retries: 1,
                abandoned: 0,
                shortfall: 0,
            }
        );
        let ev = cm.capacity_events();
        assert_eq!(ev.requests, 2, "denied request + zone-1 retry");
        assert_eq!(ev.denials, 1);
        assert_eq!(ev.retries, 1);
        assert_eq!(cm.fault_counts().zone_denials, 1);
        // Retry went out after one 10 s backoff, into zone 1.
        assert_eq!(cm.pending_ready_time(), Some(SimTime::from_secs(40)));
        assert_eq!(cm.home_zone(), 0, "transient rotation restored");
    }

    #[test]
    fn market_switch_pins_old_lifetimes_and_drains_the_fleet() {
        let mut spot = cloud();
        spot.pricing = spot.pricing.with_spot();
        let mut cm = ClusterManager::new(spot, 7);
        cm.request_nodes(2, SimTime::ZERO).unwrap();
        let t = SimTime::from_secs(30);
        assert_eq!(cm.absorb_ready(t).len(), 2);
        // One request still in flight when the switch lands.
        cm.request_nodes(1, SimTime::from_secs(40)).unwrap();
        let sw = SwitchDirective {
            market: Some(PricingTier::OnDemand),
            interruption_rate_per_hour: Some(0.0),
            zone: None,
        };
        let at = SimTime::from_secs(100);
        let outcome = cm.switch_market(&sw, at).unwrap();
        assert_eq!(
            outcome,
            SwitchOutcome {
                drained: 2,
                parked: 0,
                cancelled: 1,
            }
        );
        assert_eq!(cm.ready_count(), 0);
        assert_eq!(cm.pending_count(), 0);
        // New capacity lands on the new market.
        cm.request_nodes(1, at).unwrap();
        cm.absorb_ready(SimTime::from_secs(130));
        let end = SimTime::from_secs(115 + 3600);
        cm.terminate_all(end);
        // Old fleet billed at the pinned spot rate 15..100 (85 s);
        // the new instance on-demand from 115 for an hour.
        let pr = CloudPricing::on_demand(P3_8XLARGE);
        let expect = pr.clone().with_spot().instance_charge(SimDuration::from_secs(85)) * 2
            + pr.instance_charge(SimDuration::from_secs(3600));
        assert_eq!(cm.compute_cost(end), expect);
    }

    #[test]
    fn market_only_switch_parks_when_holding_is_cheaper() {
        // Cheap spot fleet, short warm hold, expensive on-demand
        // re-provision: holding the fleet across the switch beats
        // buying it back, so the drain parks instead of terminating.
        let mut spot = cloud();
        spot.pricing = spot.pricing.with_spot();
        let mut cm = ClusterManager::new(spot, 7).with_warm_pool(
            2,
            SimDuration::from_secs(10),
            SimDuration::from_secs(2),
        );
        cm.request_nodes(2, SimTime::ZERO).unwrap();
        cm.absorb_ready(SimTime::from_secs(30));
        let sw = SwitchDirective {
            market: Some(PricingTier::OnDemand),
            ..SwitchDirective::default()
        };
        let outcome = cm.switch_market(&sw, SimTime::from_secs(100)).unwrap();
        assert_eq!(outcome.parked, 2);
        assert_eq!(outcome.drained, 0);
        assert_eq!(cm.warm_count(), 2);
        // A zone move never parks, no matter the economics.
        let mut cm2 = ClusterManager::new(cloud(), 7).with_warm_pool(
            2,
            SimDuration::from_secs(10),
            SimDuration::from_secs(2),
        );
        cm2.set_fault_plan(zoned_plan(1.0, true), 42);
        cm2.set_home_zone(1);
        cm2.request_nodes(2, SimTime::ZERO).unwrap();
        cm2.absorb_ready(SimTime::from_secs(30));
        let outcome = cm2
            .switch_market(
                &SwitchDirective {
                    zone: Some(0),
                    ..SwitchDirective::default()
                },
                SimTime::from_secs(2000),
            )
            .unwrap();
        assert_eq!(outcome.parked, 0);
        assert_eq!(outcome.drained, 2);
        assert_eq!(cm2.home_zone(), 0);
    }

    #[test]
    fn degraded_nodes_surface_their_slowdown() {
        let mut cm = ClusterManager::new(cloud(), 7);
        cm.set_fault_plan(
            FaultPlan {
                degraded_prob: 1.0,
                degraded_factor: 2.5,
                ..FaultPlan::none()
            },
            42,
        );
        cm.request_nodes(1, SimTime::ZERO).unwrap();
        let nodes = cm.absorb_ready(SimTime::from_secs(30));
        assert_eq!(nodes.len(), 1);
        assert_eq!(cm.node_slowdown(nodes[0]), 2.5);
        assert_eq!(cm.node_slowdown(NodeId::new(999)), 1.0);
    }

    #[test]
    fn warm_capacity_is_respected() {
        let mut cm = ClusterManager::new(cloud(), 1).with_warm_pool(
            1,
            SimDuration::from_secs(300),
            SimDuration::from_secs(2),
        );
        cm.request_nodes(3, SimTime::ZERO).unwrap();
        let nodes = cm.absorb_ready(SimTime::from_secs(30));
        cm.terminate_nodes(&nodes, SimTime::from_secs(100)).unwrap();
        // Only one fits the pool; the other two released for real.
        assert_eq!(cm.warm_count(), 1);
    }
}
