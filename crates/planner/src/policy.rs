//! The three allocation policies evaluated in §6, behind one interface.

use crate::greedy::{plan_rubberband, PlannerConfig};
use crate::naive::plan_naive_elastic;
use crate::static_planner::plan_static_optimal;
use rb_core::{Result, SimDuration};
use rb_hpo::ExperimentSpec;
use rb_sim::{AllocationPlan, Prediction, Simulator};
use std::fmt;

/// Which planner produces the allocation plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Cost-optimal fixed-size cluster (§3.2).
    Static,
    /// Elastic cluster with a fixed per-trial allocation (§6.3.1).
    NaiveElastic,
    /// RubberBand's greedy elastic planner (§4.3).
    RubberBand,
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Static => write!(f, "static"),
            Policy::NaiveElastic => write!(f, "naive-elastic"),
            Policy::RubberBand => write!(f, "rubberband"),
        }
    }
}

/// A planned execution: the plan, its prediction, and which policy made it.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The policy that produced the plan.
    pub policy: Policy,
    /// The allocation plan.
    pub plan: AllocationPlan,
    /// Predicted JCT and cost.
    pub prediction: Prediction,
}

/// Plans `spec` under `policy`.
///
/// # Errors
///
/// Returns [`rb_core::RbError::Infeasible`] when the policy cannot meet
/// the deadline; propagates simulator errors.
pub fn plan_with_policy(
    policy: Policy,
    sim: &Simulator,
    spec: &ExperimentSpec,
    deadline: SimDuration,
    config: &PlannerConfig,
) -> Result<PlanOutcome> {
    let (plan, prediction) = match policy {
        Policy::Static => plan_static_optimal(sim, spec, deadline, config.max_gpus_per_trial)?,
        Policy::NaiveElastic => plan_naive_elastic(sim, spec, deadline, config.max_gpus_per_trial)?,
        Policy::RubberBand => {
            let out = plan_rubberband(sim, spec, deadline, config)?;
            (out.plan, out.prediction)
        }
    };
    Ok(PlanOutcome {
        policy,
        plan,
        prediction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_8XLARGE;
    use rb_cloud::CloudPricing;
    use rb_profile::{CloudProfile, ModelProfile};
    use rb_scaling::zoo::RESNET50;
    use rb_scaling::AnalyticScaling;
    use rb_sim::SimConfig;
    use std::sync::Arc;

    fn sim() -> Simulator {
        let scaling = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4));
        let model = ModelProfile::from_scaling("rn50", scaling, 10, 2.0, 0.0);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay(SimDuration::from_secs(15))
            .with_init_latency(SimDuration::from_secs(15));
        Simulator::new(model, cloud).with_config(SimConfig {
            samples: 3,
            seed: 5,
            sync_overhead_secs: 1.0,
        })
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec::from_stages(&[(16, 4), (8, 8), (4, 16), (2, 32), (1, 64)]).unwrap()
    }

    #[test]
    fn all_policies_produce_feasible_plans() {
        let s = sim();
        let deadline = SimDuration::from_mins(90);
        for policy in [Policy::Static, Policy::NaiveElastic, Policy::RubberBand] {
            let out =
                plan_with_policy(policy, &s, &spec(), deadline, &PlannerConfig::default()).unwrap();
            assert!(out.prediction.feasible(deadline), "{policy} infeasible");
            assert_eq!(out.policy, policy);
        }
    }

    #[test]
    fn rubberband_is_cheapest_policy() {
        // The paper's headline ordering at a moderately tight deadline:
        // RubberBand ≤ static, RubberBand ≤ naive elastic.
        let s = sim();
        let deadline = SimDuration::from_mins(60);
        let cfg = PlannerConfig::default();
        let rb = plan_with_policy(Policy::RubberBand, &s, &spec(), deadline, &cfg).unwrap();
        let st = plan_with_policy(Policy::Static, &s, &spec(), deadline, &cfg).unwrap();
        let ne = plan_with_policy(Policy::NaiveElastic, &s, &spec(), deadline, &cfg).unwrap();
        assert!(rb.prediction.cost <= st.prediction.cost);
        assert!(rb.prediction.cost <= ne.prediction.cost);
    }

    #[test]
    fn policy_display_names() {
        assert_eq!(Policy::Static.to_string(), "static");
        assert_eq!(Policy::NaiveElastic.to_string(), "naive-elastic");
        assert_eq!(Policy::RubberBand.to_string(), "rubberband");
    }
}
