//! A discrete-event cloud provider substrate.
//!
//! The RubberBand paper runs on AWS EC2 through Ray's autoscaler and boto.
//! This crate replaces that stack with a simulated provider that exposes
//! exactly the characteristics the paper models (§2.2, §4.1):
//!
//! * an **instance catalog** with per-hour on-demand and spot prices
//!   ([`catalog`]),
//! * a **billing model** — per-instance (per-second granularity, 60 s
//!   minimum charge) or per-function — plus per-GB data-ingress pricing
//!   ([`pricing`]),
//! * a **provider** that services provisioning requests after a sampled
//!   queuing delay and tracks the fleet ([`provider`]),
//! * a **billing meter** that converts instance lifetimes, data transfers
//!   and function-usage records into exact dollar amounts ([`billing`]),
//! * a **fault-injection layer** that deterministically breaks the above —
//!   capacity failures, stragglers, hardware failures, degraded nodes —
//!   so the executor's recovery paths can be exercised in virtual time
//!   ([`chaos`]),
//! * a **shared elastic instance pool** for multi-job serving: capacity
//!   released at one job's barrier is handed to another job instead of
//!   terminated, saving the minimum charge, the hand-over latency, and
//!   the data ingress — with an explicit savings ledger ([`pool`]).

pub mod billing;
pub mod catalog;
pub mod chaos;
pub mod pool;
pub mod pricing;
pub mod provider;

pub use billing::{BillingMeter, UsageRecord};
pub use catalog::{InstanceType, PricingTier};
pub use chaos::{FaultCounts, FaultInjector, FaultPlan, InstanceFaults, ZonePlan, ZoneWindow};
pub use pool::{physical_id, InstancePool, PoolConfig, PoolGrant, PoolStats, SharedPool};
pub use pricing::{BillingModel, CloudPricing};
pub use provider::{InstanceState, ProviderConfig, SimProvider};
