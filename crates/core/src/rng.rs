//! Deterministic pseudo-randomness and latency distributions.
//!
//! Every stochastic quantity in RubberBand — training-step latency,
//! provider queuing delay, instance initialization time, learning-curve
//! noise — is sampled from a [`Distribution`] driven by a [`Prng`]. The
//! generator is xoshiro256++ seeded through SplitMix64, the standard
//! construction recommended by its authors; it is small, fast, and gives
//! bit-identical streams on every platform, which keeps experiment tables
//! exactly reproducible from a seed.

use std::f64::consts::PI;

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use rb_core::rng::Prng;
/// let mut a = Prng::seed_from_u64(42);
/// let mut b = Prng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
}

/// SplitMix64 step used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a base seed with a stream index into an independent 64-bit seed.
///
/// This is the counter-based seed derivation used by the Monte-Carlo
/// prediction engine: sample `i` of a prediction draws from
/// `Prng::seed_from_u64(mix_seed(config_seed, i))`, so each sample's
/// stream depends only on `(seed, i)` and never on execution order. The
/// same samples can therefore be drawn sequentially, in any thread
/// interleaving, or re-drawn in isolation, and remain bit-identical.
///
/// The construction is the SplitMix64 output function applied to
/// `seed + index · γ` (γ the golden-ratio increment), i.e. the `index`-th
/// element of the SplitMix64 stream starting at `seed` — the standard
/// counter-mode use of SplitMix64.
///
/// # Examples
///
/// ```
/// use rb_core::rng::mix_seed;
/// assert_eq!(mix_seed(7, 3), mix_seed(7, 3));
/// assert_ne!(mix_seed(7, 3), mix_seed(7, 4));
/// assert_ne!(mix_seed(7, 0), mix_seed(8, 0));
/// ```
pub fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut state = seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64(&mut state)
}

impl Prng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free bounded generation (Lemire). The
        // tiny modulo bias is irrelevant for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform bounds inverted");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a standard normal variate via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(1e-300);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
    }

    /// Derives an independent child generator; deterministic in the parent's
    /// state. Used to give each trial / instance its own stream so that
    /// adding an entity does not perturb the samples drawn by others.
    pub fn fork(&mut self) -> Prng {
        Prng::seed_from_u64(self.next_u64())
    }

    /// Creates the generator for stream `index` of the seed's family —
    /// shorthand for `seed_from_u64(mix_seed(seed, index))`.
    pub fn for_stream(seed: u64, index: u64) -> Prng {
        Prng::seed_from_u64(mix_seed(seed, index))
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// A parametric distribution over non-negative latencies (or other scalars).
///
/// The execution model associates one of these with every DAG node type
/// (§4.2 of the paper); the profiler fits them from measurements.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Always returns the same value. Used for modelling overheads that are
    /// held constant in an experiment (e.g. "init latency = 0 s" in Fig. 9).
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Normal with the given mean and standard deviation, truncated below at
    /// `floor` (latencies cannot be negative).
    Normal {
        /// Mean of the untruncated normal.
        mean: f64,
        /// Standard deviation.
        std: f64,
        /// Lower truncation bound applied after sampling.
        floor: f64,
    },
    /// Log-normal parameterized by the mean and standard deviation of the
    /// underlying normal (of `ln X`). Heavy right tail; a good fit for cloud
    /// provisioning delays.
    LogNormal {
        /// Mean of `ln X`.
        mu: f64,
        /// Standard deviation of `ln X`.
        sigma: f64,
    },
    /// Exponential with the given rate λ (mean `1/λ`).
    Exponential {
        /// Rate parameter λ.
        rate: f64,
    },
    /// A constant base plus an exponential tail: `base + Exp(rate)`.
    /// Models "at least `base` seconds, sometimes much more" behaviours
    /// such as spot-capacity queuing.
    ShiftedExponential {
        /// Deterministic lower bound.
        base: f64,
        /// Rate of the exponential tail.
        rate: f64,
    },
}

impl Distribution {
    /// A distribution that is always exactly zero.
    pub const ZERO: Distribution = Distribution::Constant(0.0);

    /// Creates a normal distribution truncated at zero.
    pub fn normal(mean: f64, std: f64) -> Distribution {
        Distribution::Normal {
            mean,
            std,
            floor: 0.0,
        }
    }

    /// Creates a log-normal from the desired mean and standard deviation of
    /// the *resulting* distribution (moment matching).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive or `std` is negative.
    pub fn lognormal_from_moments(mean: f64, std: f64) -> Distribution {
        assert!(mean > 0.0, "lognormal mean must be positive");
        assert!(std >= 0.0, "lognormal std must be non-negative");
        if std == 0.0 {
            return Distribution::Constant(mean);
        }
        let cv2 = (std / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Distribution::LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        }
    }

    /// Checks the distribution's parameters: every field must be finite,
    /// bounds must be ordered, rates must be strictly positive, and
    /// values that model latencies or prices must be non-negative. A
    /// distribution that fails this check can produce NaN, negative, or
    /// infinite samples — callers that accept distributions from
    /// configuration (the cloud provider, the cloud profile) validate at
    /// construction instead of sampling garbage later.
    ///
    /// # Errors
    ///
    /// Returns [`crate::RbError::InvalidConfig`] describing the first
    /// offending parameter.
    pub fn validate(&self) -> crate::Result<()> {
        let bad = |what: &str| {
            Err(crate::RbError::InvalidConfig(format!(
                "invalid distribution {self:?}: {what}"
            )))
        };
        match *self {
            Distribution::Constant(v) => {
                if !v.is_finite() || v < 0.0 {
                    return bad("constant must be finite and non-negative");
                }
            }
            Distribution::Uniform { lo, hi } => {
                if !lo.is_finite() || !hi.is_finite() {
                    return bad("bounds must be finite");
                }
                if lo < 0.0 {
                    return bad("lower bound must be non-negative");
                }
                if hi < lo {
                    return bad("bounds are inverted");
                }
            }
            Distribution::Normal { mean, std, floor } => {
                if !mean.is_finite() || !std.is_finite() || !floor.is_finite() {
                    return bad("parameters must be finite");
                }
                if mean < 0.0 {
                    return bad("mean must be non-negative");
                }
                if std < 0.0 {
                    return bad("std must be non-negative");
                }
            }
            Distribution::LogNormal { mu, sigma } => {
                if !mu.is_finite() || !sigma.is_finite() {
                    return bad("parameters must be finite");
                }
                if sigma < 0.0 {
                    return bad("sigma must be non-negative");
                }
            }
            Distribution::Exponential { rate } => {
                if !rate.is_finite() || rate <= 0.0 {
                    return bad("rate must be finite and strictly positive");
                }
            }
            Distribution::ShiftedExponential { base, rate } => {
                if !base.is_finite() || base < 0.0 {
                    return bad("base must be finite and non-negative");
                }
                if !rate.is_finite() || rate <= 0.0 {
                    return bad("rate must be finite and strictly positive");
                }
            }
        }
        Ok(())
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Prng) -> f64 {
        match *self {
            Distribution::Constant(v) => v,
            Distribution::Uniform { lo, hi } => rng.uniform(lo, hi),
            Distribution::Normal { mean, std, floor } => {
                (mean + std * rng.standard_normal()).max(floor)
            }
            Distribution::LogNormal { mu, sigma } => (mu + sigma * rng.standard_normal()).exp(),
            Distribution::Exponential { rate } => -(1.0 - rng.next_f64()).ln() / rate,
            Distribution::ShiftedExponential { base, rate } => {
                base - (1.0 - rng.next_f64()).ln() / rate
            }
        }
    }

    /// Returns the distribution's mean (for truncated normals, the mean of
    /// the *untruncated* distribution — adequate when `floor` is far in the
    /// tail, as it is for all latency models here).
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Constant(v) => v,
            Distribution::Uniform { lo, hi } => (lo + hi) / 2.0,
            Distribution::Normal { mean, .. } => mean,
            Distribution::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Distribution::Exponential { rate } => 1.0 / rate,
            Distribution::ShiftedExponential { base, rate } => base + 1.0 / rate,
        }
    }

    /// Scales the distribution by a non-negative constant `k`, returning the
    /// distribution of `k·X`.
    pub fn scaled(&self, k: f64) -> Distribution {
        debug_assert!(k >= 0.0, "scale factor must be non-negative");
        match *self {
            Distribution::Constant(v) => Distribution::Constant(v * k),
            Distribution::Uniform { lo, hi } => Distribution::Uniform {
                lo: lo * k,
                hi: hi * k,
            },
            Distribution::Normal { mean, std, floor } => Distribution::Normal {
                mean: mean * k,
                std: std * k,
                floor: floor * k,
            },
            Distribution::LogNormal { mu, sigma } => Distribution::LogNormal {
                mu: mu + k.max(1e-300).ln(),
                sigma,
            },
            Distribution::Exponential { rate } => Distribution::Exponential { rate: rate / k },
            Distribution::ShiftedExponential { base, rate } => Distribution::ShiftedExponential {
                base: base * k,
                rate: rate / k,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OnlineStats;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Prng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Prng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let x = rng.next_below(5);
            assert!(x < 5);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn normal_sample_moments_match() {
        let mut rng = Prng::seed_from_u64(5);
        let d = Distribution::normal(4.0, 1.0);
        let mut st = OnlineStats::new();
        for _ in 0..50_000 {
            st.push(d.sample(&mut rng));
        }
        assert!((st.mean() - 4.0).abs() < 0.05, "mean {}", st.mean());
        assert!((st.std() - 1.0).abs() < 0.05, "std {}", st.std());
    }

    #[test]
    fn lognormal_moment_matching() {
        let d = Distribution::lognormal_from_moments(10.0, 3.0);
        assert!((d.mean() - 10.0).abs() < 1e-9);
        let mut rng = Prng::seed_from_u64(6);
        let mut st = OnlineStats::new();
        for _ in 0..100_000 {
            st.push(d.sample(&mut rng));
        }
        assert!((st.mean() - 10.0).abs() < 0.2, "mean {}", st.mean());
        assert!((st.std() - 3.0).abs() < 0.2, "std {}", st.std());
    }

    #[test]
    fn lognormal_zero_std_degenerates_to_constant() {
        assert_eq!(
            Distribution::lognormal_from_moments(5.0, 0.0),
            Distribution::Constant(5.0)
        );
    }

    #[test]
    fn exponential_mean() {
        let d = Distribution::Exponential { rate: 0.5 };
        assert!((d.mean() - 2.0).abs() < 1e-12);
        let mut rng = Prng::seed_from_u64(8);
        let mut st = OnlineStats::new();
        for _ in 0..100_000 {
            let x = d.sample(&mut rng);
            assert!(x >= 0.0);
            st.push(x);
        }
        assert!((st.mean() - 2.0).abs() < 0.05);
    }

    #[test]
    fn truncated_normal_never_below_floor() {
        let d = Distribution::Normal {
            mean: 0.5,
            std: 2.0,
            floor: 0.0,
        };
        let mut rng = Prng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn scaled_distribution_scales_mean() {
        for d in [
            Distribution::Constant(3.0),
            Distribution::Uniform { lo: 1.0, hi: 5.0 },
            Distribution::normal(4.0, 1.0),
            Distribution::lognormal_from_moments(4.0, 1.0),
            Distribution::Exponential { rate: 0.25 },
            Distribution::ShiftedExponential {
                base: 1.0,
                rate: 1.0,
            },
        ] {
            let s = d.scaled(2.0);
            assert!(
                (s.mean() - 2.0 * d.mean()).abs() < 1e-9,
                "scaling {d:?} gave mean {}",
                s.mean()
            );
        }
    }

    #[test]
    fn fork_streams_are_independent_of_sibling_count() {
        // Forking N children then sampling child k gives the same values
        // regardless of how many further forks happen afterwards.
        let mut parent1 = Prng::seed_from_u64(42);
        let mut c1 = parent1.fork();
        let _ = parent1.fork();
        let mut parent2 = Prng::seed_from_u64(42);
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn mix_seed_is_order_free_and_collision_resistant() {
        // The derived seed depends only on (seed, index): drawing stream 5
        // never requires drawing streams 0..4 first.
        let direct = Prng::for_stream(99, 5).next_u64();
        let mut detour = Prng::for_stream(99, 4);
        let _ = detour.next_u64();
        assert_eq!(direct, Prng::for_stream(99, 5).next_u64());
        // Nearby (seed, index) pairs land on distinct seeds.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            for index in 0..64u64 {
                assert!(
                    seen.insert(mix_seed(seed, index)),
                    "collision at ({seed}, {index})"
                );
            }
        }
    }

    #[test]
    fn validate_accepts_well_formed_distributions() {
        for d in [
            Distribution::ZERO,
            Distribution::Constant(3.0),
            Distribution::Uniform { lo: 1.0, hi: 5.0 },
            Distribution::normal(4.0, 1.0),
            Distribution::lognormal_from_moments(4.0, 1.0),
            Distribution::Exponential { rate: 0.25 },
            Distribution::ShiftedExponential {
                base: 1.0,
                rate: 1.0,
            },
        ] {
            assert!(d.validate().is_ok(), "{d:?} should validate");
        }
    }

    #[test]
    fn validate_rejects_garbage_parameters() {
        let bad = [
            Distribution::Constant(-1.0),
            Distribution::Constant(f64::NAN),
            Distribution::Constant(f64::INFINITY),
            Distribution::Uniform { lo: 5.0, hi: 1.0 },
            Distribution::Uniform { lo: -1.0, hi: 1.0 },
            Distribution::Uniform {
                lo: 0.0,
                hi: f64::INFINITY,
            },
            Distribution::Normal {
                mean: 1.0,
                std: -0.5,
                floor: 0.0,
            },
            Distribution::Normal {
                mean: f64::NAN,
                std: 1.0,
                floor: 0.0,
            },
            Distribution::Normal {
                mean: -2.0,
                std: 1.0,
                floor: 0.0,
            },
            Distribution::LogNormal {
                mu: 0.0,
                sigma: -1.0,
            },
            Distribution::LogNormal {
                mu: f64::INFINITY,
                sigma: 1.0,
            },
            Distribution::Exponential { rate: 0.0 },
            Distribution::Exponential { rate: -1.0 },
            Distribution::Exponential { rate: f64::NAN },
            Distribution::ShiftedExponential {
                base: -1.0,
                rate: 1.0,
            },
            Distribution::ShiftedExponential {
                base: 1.0,
                rate: 0.0,
            },
        ];
        for d in bad {
            let err = d.validate().expect_err(&format!("{d:?} must be rejected"));
            assert!(matches!(err, crate::RbError::InvalidConfig(_)), "{err:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Prng::seed_from_u64(10);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
