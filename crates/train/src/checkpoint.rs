//! The checkpoint store.
//!
//! Between iterations a trial can be checkpointed, migrated and restored
//! (§5): one worker serializes the model/optimizer state into a shared
//! object store; new workers fetch the blob and resume. This module
//! reproduces that mechanism with a real byte-level format so that
//! checkpoint sizes (and hence migration latencies) reflect actual state,
//! and restore is an honest inverse of save.

use crate::trial::{MetricPoint, Trial, TrialStatus};
use rb_core::{RbError, Result, TrialId};
use rb_hpo::{Config, ConfigValue};
use rb_scaling::zoo::ModelArch;
use std::collections::BTreeMap;

const MAGIC: &[u8; 4] = b"RBCK";
const VERSION: u8 = 1;

/// A serialized trial snapshot plus the model-state payload size.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Which trial this snapshot belongs to.
    pub trial_id: TrialId,
    /// Work units completed at snapshot time.
    pub iters_done: u64,
    /// Serialized trial metadata (config, metric history).
    pub blob: Vec<u8>,
    /// Size of the model + optimizer tensors this checkpoint represents,
    /// in bytes. Not materialized (the learning curve is analytic), but
    /// charged when the checkpoint moves across the network.
    pub model_state_bytes: u64,
}

impl Checkpoint {
    /// Total bytes a migration must move.
    pub fn total_bytes(&self) -> u64 {
        self.model_state_bytes + self.blob.len() as u64
    }
}

/// Model + optimizer state size for an architecture: fp32 weights plus SGD
/// momentum buffers (2 tensors of `params` floats).
pub fn model_state_bytes(arch: &ModelArch) -> u64 {
    (arch.params_millions * 1e6 * 4.0 * 2.0) as u64
}

// --- binary encoding helpers -------------------------------------------------

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(RbError::Execution("truncated checkpoint".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u64()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| RbError::Execution("invalid utf-8 in checkpoint".into()))
    }
}

/// Serializes a trial's resumable state (id, progress, config, history).
pub fn encode_trial(trial: &Trial) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    put_u64(&mut buf, trial.id.raw());
    put_u64(&mut buf, trial.seed);
    put_u64(&mut buf, trial.iters_done());
    // Config.
    put_u64(&mut buf, trial.config.len() as u64);
    for (name, value) in trial.config.iter() {
        put_str(&mut buf, name);
        match value {
            ConfigValue::Float(v) => {
                buf.push(0);
                put_f64(&mut buf, *v);
            }
            ConfigValue::Int(v) => {
                buf.push(1);
                put_u64(&mut buf, *v as u64);
            }
            ConfigValue::Choice(s) => {
                buf.push(2);
                put_str(&mut buf, s);
            }
        }
    }
    // History.
    put_u64(&mut buf, trial.history().len() as u64);
    for p in trial.history() {
        put_u64(&mut buf, p.iters);
        put_f64(&mut buf, p.accuracy);
    }
    buf
}

/// Decoded checkpoint contents.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSnapshot {
    /// Trial identity.
    pub id: TrialId,
    /// Noise-stream seed.
    pub seed: u64,
    /// Work units completed.
    pub iters_done: u64,
    /// The hyperparameter configuration.
    pub config: Config,
    /// Metric history.
    pub history: Vec<MetricPoint>,
}

/// Deserializes a blob produced by [`encode_trial`].
///
/// # Errors
///
/// Returns [`RbError::Execution`] on truncation, bad magic, or an
/// unsupported version.
pub fn decode_trial(blob: &[u8]) -> Result<TrialSnapshot> {
    let mut r = Reader::new(blob);
    if r.take(4)? != MAGIC {
        return Err(RbError::Execution("bad checkpoint magic".into()));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(RbError::Execution(format!(
            "unsupported checkpoint version {version}"
        )));
    }
    let id = TrialId::new(r.u64()?);
    let seed = r.u64()?;
    let iters_done = r.u64()?;
    let n_cfg = r.u64()? as usize;
    let mut config = Config::new();
    for _ in 0..n_cfg {
        let name = r.str()?;
        let tag = r.u8()?;
        let value = match tag {
            0 => ConfigValue::Float(r.f64()?),
            1 => ConfigValue::Int(r.u64()? as i64),
            2 => ConfigValue::Choice(r.str()?),
            t => return Err(RbError::Execution(format!("unknown config value tag {t}"))),
        };
        config.set(name, value);
    }
    let n_hist = r.u64()? as usize;
    let mut history = Vec::with_capacity(n_hist);
    for _ in 0..n_hist {
        let iters = r.u64()?;
        let accuracy = r.f64()?;
        history.push(MetricPoint { iters, accuracy });
    }
    Ok(TrialSnapshot {
        id,
        seed,
        iters_done,
        config,
        history,
    })
}

/// The in-memory object store holding the latest checkpoint per trial.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    store: BTreeMap<TrialId, Checkpoint>,
    puts: u64,
}

impl CheckpointStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Checkpoints a trial, replacing any previous snapshot.
    pub fn save(&mut self, trial: &Trial, arch: &ModelArch) -> &Checkpoint {
        let ck = Checkpoint {
            trial_id: trial.id,
            iters_done: trial.iters_done(),
            blob: encode_trial(trial),
            model_state_bytes: model_state_bytes(arch),
        };
        self.puts += 1;
        self.store.insert(trial.id, ck);
        &self.store[&trial.id]
    }

    /// Fetches the latest checkpoint for a trial.
    pub fn get(&self, id: TrialId) -> Option<&Checkpoint> {
        self.store.get(&id)
    }

    /// Restores a trial's progress from its latest checkpoint. The trial
    /// must be paused or pending (a freshly created replacement); it is
    /// left paused, ready to be started.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Execution`] if no checkpoint exists, decoding
    /// fails, or the snapshot belongs to a different trial.
    pub fn restore(&self, trial: &mut Trial) -> Result<()> {
        let ck = self
            .get(trial.id)
            .ok_or_else(|| RbError::Execution(format!("no checkpoint for {}", trial.id)))?;
        let snap = decode_trial(&ck.blob)?;
        if snap.id != trial.id {
            return Err(RbError::Execution(format!(
                "checkpoint for {} offered to {}",
                snap.id, trial.id
            )));
        }
        if trial.status() == TrialStatus::Running {
            return Err(RbError::Execution(format!(
                "cannot restore running trial {}",
                trial.id
            )));
        }
        trial.restore_progress(snap.iters_done, snap.history);
        Ok(())
    }

    /// Drops a trial's checkpoint (e.g. after termination).
    pub fn evict(&mut self, id: TrialId) {
        self.store.remove(&id);
    }

    /// Number of checkpoints currently stored.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no checkpoints are stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Total writes since creation.
    pub fn total_puts(&self) -> u64 {
        self.puts
    }

    /// Total bytes currently resident (metadata blobs only; model tensors
    /// are accounted virtually).
    pub fn resident_blob_bytes(&self) -> u64 {
        self.store.values().map(|c| c.blob.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::resnet101_cifar10;
    use rb_scaling::zoo::RESNET101;

    fn trained_trial() -> Trial {
        let task = resnet101_cifar10();
        let mut tr = Trial::new(
            TrialId::new(3),
            Config::new()
                .with_f64("lr", 0.05)
                .with_f64("weight_decay", 1e-4),
            99,
        );
        tr.start().unwrap();
        tr.advance(&task, 1).unwrap();
        tr.advance(&task, 3).unwrap();
        tr.pause().unwrap();
        tr
    }

    #[test]
    fn encode_decode_round_trip() {
        let tr = trained_trial();
        let snap = decode_trial(&encode_trial(&tr)).unwrap();
        assert_eq!(snap.id, tr.id);
        assert_eq!(snap.seed, tr.seed);
        assert_eq!(snap.iters_done, tr.iters_done());
        assert_eq!(snap.config, tr.config);
        assert_eq!(snap.history, tr.history().to_vec());
    }

    #[test]
    fn round_trip_preserves_all_value_kinds() {
        let mut cfg = Config::new();
        cfg.set("lr", ConfigValue::Float(0.1));
        cfg.set("layers", ConfigValue::Int(-3));
        cfg.set("opt", ConfigValue::Choice("adam".into()));
        let tr = Trial::new(TrialId::new(1), cfg.clone(), 5);
        let snap = decode_trial(&encode_trial(&tr)).unwrap();
        assert_eq!(snap.config, cfg);
    }

    #[test]
    fn decode_rejects_corruption() {
        let tr = trained_trial();
        let blob = encode_trial(&tr);
        assert!(decode_trial(&blob[..3]).is_err(), "truncated magic");
        assert!(
            decode_trial(&blob[..blob.len() - 4]).is_err(),
            "truncated tail"
        );
        let mut bad_magic = blob.clone();
        bad_magic[0] = b'X';
        assert!(decode_trial(&bad_magic).is_err());
        let mut bad_version = blob.clone();
        bad_version[4] = 99;
        assert!(decode_trial(&bad_version).is_err());
    }

    #[test]
    fn save_restore_resumes_training_seamlessly() {
        let task = resnet101_cifar10();
        let mut store = CheckpointStore::new();
        let mut tr = trained_trial();
        store.save(&tr, &RESNET101);

        // Simulate migration: a fresh replacement trial object.
        let mut replacement = Trial::new(tr.id, tr.config.clone(), tr.seed);
        store.restore(&mut replacement).unwrap();
        assert_eq!(replacement.iters_done(), 4);
        assert_eq!(replacement.history(), tr.history());

        // Continuing from the restore matches continuing the original:
        // the learning curve is a function of (config, iters, seed).
        replacement.start().unwrap();
        let a_restored = replacement.advance(&task, 9).unwrap();
        tr.start().unwrap();
        let a_original = tr.advance(&task, 9).unwrap();
        assert_eq!(a_restored, a_original);
    }

    #[test]
    fn preemption_recovery_is_bit_identical_to_uninterrupted_training() {
        // The executor's spot-recovery path in miniature: checkpoint at a
        // barrier, lose mid-stage progress to a reclaim, restore on a
        // replacement, retrain the stage. The recovered trial must be
        // bit-identical — iteration count, per-point history, final
        // accuracy — to one that was never preempted.
        let task = resnet101_cifar10();
        let cfg = Config::new()
            .with_f64("lr", 0.05)
            .with_f64("weight_decay", 1e-4);

        // Uninterrupted reference: stage of 4 iters, then a stage of 9.
        let mut reference = Trial::new(TrialId::new(7), cfg.clone(), 0x5EED);
        reference.start().unwrap();
        reference.advance(&task, 4).unwrap();
        let ref_acc = reference.advance(&task, 9).unwrap();

        // Victim: barrier checkpoint after 4 iters, 5 in-flight iters lost
        // to the preemption (never checkpointed), worker migrates.
        let mut store = CheckpointStore::new();
        let mut victim = Trial::new(TrialId::new(7), cfg.clone(), 0x5EED);
        victim.start().unwrap();
        victim.advance(&task, 4).unwrap();
        victim.pause().unwrap();
        store.save(&victim, &RESNET101);
        victim.start().unwrap();
        victim.advance(&task, 5).unwrap();
        drop(victim); // the node is gone

        // Replacement restores from the barrier checkpoint and retrains.
        let mut replacement = Trial::new(TrialId::new(7), cfg, 0x5EED);
        store.restore(&mut replacement).unwrap();
        assert_eq!(replacement.iters_done(), 4, "resumes at the barrier");
        replacement.start().unwrap();
        let rec_acc = replacement.advance(&task, 9).unwrap();

        assert_eq!(rec_acc.to_bits(), ref_acc.to_bits(), "accuracy diverged");
        assert_eq!(replacement.iters_done(), reference.iters_done());
        assert_eq!(replacement.history(), reference.history());
    }

    #[test]
    fn restore_requires_matching_checkpoint() {
        let store = CheckpointStore::new();
        let mut tr = trained_trial();
        assert!(store.restore(&mut tr).is_err(), "empty store");
    }

    #[test]
    fn restore_refuses_running_trial() {
        let mut store = CheckpointStore::new();
        let mut tr = trained_trial();
        store.save(&tr, &RESNET101);
        tr.start().unwrap();
        assert!(store.restore(&mut tr).is_err());
    }

    #[test]
    fn store_bookkeeping() {
        let mut store = CheckpointStore::new();
        assert!(store.is_empty());
        let tr = trained_trial();
        store.save(&tr, &RESNET101);
        store.save(&tr, &RESNET101); // overwrite
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_puts(), 2);
        assert!(store.resident_blob_bytes() > 0);
        store.evict(tr.id);
        assert!(store.is_empty());
        assert!(store.get(tr.id).is_none());
    }

    #[test]
    fn model_state_bytes_scale_with_params() {
        // ResNet-101: 44.5 M params × 4 B × 2 (weights + momentum).
        let b = model_state_bytes(&RESNET101);
        assert_eq!(b, (44.5e6 * 8.0) as u64);
        let ck = Checkpoint {
            trial_id: TrialId::new(0),
            iters_done: 0,
            blob: vec![0; 100],
            model_state_bytes: b,
        };
        assert_eq!(ck.total_bytes(), b + 100);
    }
}
