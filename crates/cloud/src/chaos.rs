//! Deterministic fault injection for the cloud/executor stack.
//!
//! The paper assumes the cloud behaves (§3): provisioning always
//! succeeds, instances only die through the spot market, and storage is
//! infallible. Real tuning frameworks treat worker loss and resource
//! shortfall as first-class failures, so this module injects them — in
//! virtual time, seeded exactly like the spot-interruption stream, so a
//! chaotic run is as bit-reproducible as a calm one.
//!
//! A [`FaultPlan`] declares *what* can go wrong; a [`FaultInjector`]
//! decides *when*, using counter-based streams ([`Prng::for_stream`])
//! keyed by request index or instance id, so every decision is a pure
//! function of `(seed, entity index)` and never of polling cadence.
//! The cardinal invariant: with no plan attached (or an inactive one)
//! the injector draws **zero** samples and the run is bit-identical to
//! an uninjected run.
//!
//! Fault taxonomy (each independently configurable):
//!
//! * **insufficient capacity** — a provisioning request is denied
//!   outright ([`rb_core::RbError::Capacity`]); retryable;
//! * **provisioning stragglers** — an instance's hand-over delay is
//!   multiplied by a large factor (a hung request, bounded only by the
//!   caller's patience);
//! * **hardware failure** — a running instance dies at a sampled
//!   instant even on on-demand capacity (non-spot);
//! * **degraded node** — an instance runs, but slower than its shape
//!   promises;
//! * **checkpoint corruption** — consumed by `rb-train`'s checkpoint
//!   store: a saved generation fails verification on the next read.

use rb_core::{mix_seed, Distribution, InstanceId, Prng, RbError, Result, SimTime};

/// A window of virtual time during which one zone is degraded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneWindow {
    /// The afflicted zone (must be `< ZonePlan::zones`).
    pub zone: u32,
    /// Window start, in virtual seconds since time zero.
    pub start_secs: f64,
    /// Window length, in virtual seconds.
    pub duration_secs: f64,
}

impl ZoneWindow {
    /// Whether `at` falls inside the window (start inclusive, end
    /// exclusive).
    pub fn contains(&self, at: SimTime) -> bool {
        let t = at.as_secs_f64();
        t >= self.start_secs && t < self.start_secs + self.duration_secs
    }

    /// The window's start as an instant.
    pub fn start(&self) -> SimTime {
        SimTime::ZERO + rb_core::SimDuration::from_secs_f64(self.start_secs)
    }

    /// The window's end as an instant.
    pub fn end(&self) -> SimTime {
        SimTime::ZERO + rb_core::SimDuration::from_secs_f64(self.start_secs + self.duration_secs)
    }

    fn validate(&self, what: &str, zones: u32) -> Result<()> {
        if self.zone >= zones {
            return Err(RbError::InvalidConfig(format!(
                "fault plan: {what} names zone {} but the plan has {} zones",
                self.zone, zones
            )));
        }
        for (name, v) in [("start_secs", self.start_secs), ("duration_secs", self.duration_secs)] {
            if !v.is_finite() || v < 0.0 {
                return Err(RbError::InvalidConfig(format!(
                    "fault plan: {what}.{name} must be finite and non-negative, got {v}"
                )));
            }
        }
        Ok(())
    }
}

/// Correlated failure-domain model: the provider's capacity is divided
/// into `zones` zones, and the chaos layer can afflict one zone with a
/// *brownout* (elevated denial probability and inflated hand-over
/// delays for a window) or an *outage* (every instance in the zone dies
/// at the window start and new capacity is denied outright until it
/// closes). [`ZonePlan::none`] disables the domain model entirely: one
/// zone, no windows, zero extra random draws.
#[derive(Debug, Clone, PartialEq)]
pub struct ZonePlan {
    /// Number of failure domains (≥ 1). With 1 zone the domain model
    /// degenerates to the zone-free provider.
    pub zones: u32,
    /// The brownout window, if any.
    pub brownout: Option<ZoneWindow>,
    /// Probability that a provisioning request targeting the browned-out
    /// zone is denied while the window is open.
    pub brownout_denial_prob: f64,
    /// Hand-over delay multiplier (≥ 1) for instances provisioned in the
    /// browned-out zone while the window is open.
    pub brownout_delay_factor: f64,
    /// The outage window, if any.
    pub outage: Option<ZoneWindow>,
}

impl ZonePlan {
    /// The empty zone plan: one zone, no correlated events, zero draws.
    pub fn none() -> Self {
        ZonePlan {
            zones: 1,
            brownout: None,
            brownout_denial_prob: 0.0,
            brownout_delay_factor: 1.0,
            outage: None,
        }
    }

    /// Whether any correlated zone event can fire.
    pub fn is_active(&self) -> bool {
        self.brownout.is_some() || self.outage.is_some()
    }

    /// Checks the plan's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<()> {
        if self.zones == 0 {
            return Err(RbError::InvalidConfig(
                "fault plan: zones must be >= 1".to_owned(),
            ));
        }
        if !(0.0..=1.0).contains(&self.brownout_denial_prob) {
            return Err(RbError::InvalidConfig(format!(
                "fault plan: brownout_denial_prob must be a probability in [0, 1], got {}",
                self.brownout_denial_prob
            )));
        }
        if !self.brownout_delay_factor.is_finite() || self.brownout_delay_factor < 1.0 {
            return Err(RbError::InvalidConfig(format!(
                "fault plan: brownout_delay_factor must be finite and >= 1, got {}",
                self.brownout_delay_factor
            )));
        }
        if let Some(w) = &self.brownout {
            w.validate("brownout", self.zones)?;
        }
        if let Some(w) = &self.outage {
            w.validate("outage", self.zones)?;
        }
        Ok(())
    }
}

impl Default for ZonePlan {
    fn default() -> Self {
        ZonePlan::none()
    }
}

/// Declarative fault model: probabilities and severities for each fault
/// class. [`FaultPlan::none`] (also `Default`) disables everything.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability that an entire provisioning request is denied with
    /// an insufficient-capacity error.
    pub capacity_failure_prob: f64,
    /// Probability that a provisioned instance straggles: its hand-over
    /// delay is multiplied by [`FaultPlan::straggler_factor`].
    pub straggler_prob: f64,
    /// Hand-over delay multiplier for stragglers (≥ 1).
    pub straggler_factor: f64,
    /// Non-spot hardware failure rate per instance-hour on running
    /// instances (Poisson, like spot interruptions but independent of
    /// the market).
    pub hw_failure_rate_per_hour: f64,
    /// Probability that a provisioned instance is degraded (slow).
    pub degraded_prob: f64,
    /// Work-unit latency multiplier on a degraded node (≥ 1).
    pub degraded_factor: f64,
    /// Probability that a saved checkpoint generation is corrupted in
    /// storage and fails verification on the next read. Consumed by the
    /// checkpoint store, not the provider.
    pub checkpoint_corruption_prob: f64,
    /// Correlated failure domains: zone brownout/outage windows.
    pub zones: ZonePlan,
}

impl FaultPlan {
    /// The empty plan: no faults, and — by the injector's contract —
    /// zero random draws.
    pub fn none() -> Self {
        FaultPlan {
            capacity_failure_prob: 0.0,
            straggler_prob: 0.0,
            straggler_factor: 1.0,
            hw_failure_rate_per_hour: 0.0,
            degraded_prob: 0.0,
            degraded_factor: 1.0,
            checkpoint_corruption_prob: 0.0,
            zones: ZonePlan::none(),
        }
    }

    /// Whether any fault class can fire.
    pub fn is_active(&self) -> bool {
        self.capacity_failure_prob > 0.0
            || self.straggler_prob > 0.0
            || self.hw_failure_rate_per_hour > 0.0
            || self.degraded_prob > 0.0
            || self.checkpoint_corruption_prob > 0.0
            || self.zones.is_active()
    }

    /// Checks the plan's parameters: probabilities in `[0, 1]`, factors
    /// at least 1, rates finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<()> {
        let prob = |name: &str, p: f64| -> Result<()> {
            if !(0.0..=1.0).contains(&p) {
                return Err(RbError::InvalidConfig(format!(
                    "fault plan: {name} must be a probability in [0, 1], got {p}"
                )));
            }
            Ok(())
        };
        prob("capacity_failure_prob", self.capacity_failure_prob)?;
        prob("straggler_prob", self.straggler_prob)?;
        prob("degraded_prob", self.degraded_prob)?;
        prob(
            "checkpoint_corruption_prob",
            self.checkpoint_corruption_prob,
        )?;
        if !self.straggler_factor.is_finite() || self.straggler_factor < 1.0 {
            return Err(RbError::InvalidConfig(format!(
                "fault plan: straggler_factor must be finite and >= 1, got {}",
                self.straggler_factor
            )));
        }
        if !self.degraded_factor.is_finite() || self.degraded_factor < 1.0 {
            return Err(RbError::InvalidConfig(format!(
                "fault plan: degraded_factor must be finite and >= 1, got {}",
                self.degraded_factor
            )));
        }
        if !self.hw_failure_rate_per_hour.is_finite() || self.hw_failure_rate_per_hour < 0.0 {
            return Err(RbError::InvalidConfig(format!(
                "fault plan: hw_failure_rate_per_hour must be finite and non-negative, got {}",
                self.hw_failure_rate_per_hour
            )));
        }
        self.zones.validate()?;
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Per-instance fault assignment decided at provisioning time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceFaults {
    /// Hand-over delay multiplier (1.0 = healthy).
    pub delay_factor: f64,
    /// Work-unit latency multiplier (1.0 = healthy).
    pub slowdown: f64,
    /// Hours of running time until a hardware failure, if one is
    /// scheduled.
    pub fail_after_hours: Option<f64>,
}

impl InstanceFaults {
    /// A healthy instance: no delay inflation, no slowdown, no failure.
    pub fn healthy() -> Self {
        InstanceFaults {
            delay_factor: 1.0,
            slowdown: 1.0,
            fail_after_hours: None,
        }
    }
}

/// Running totals of faults actually injected, for the recovery rollup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Provisioning requests denied for capacity.
    pub capacity_failures: u64,
    /// Instances whose hand-over was straggler-inflated.
    pub stragglers: u64,
    /// Hardware failures that actually struck a running instance.
    pub hw_failures: u64,
    /// Instances provisioned degraded.
    pub degraded_nodes: u64,
    /// Provisioning requests denied by a zone brownout or outage.
    pub zone_denials: u64,
    /// Running instances killed by a zone outage.
    pub zone_outage_kills: u64,
}

impl FaultCounts {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.capacity_failures
            + self.stragglers
            + self.hw_failures
            + self.degraded_nodes
            + self.zone_denials
            + self.zone_outage_kills
    }
}

/// The runtime half of the fault layer: seeded decision streams plus
/// injection tallies. Owned by the provider (and, for checkpoint
/// corruption, mirrored into the checkpoint store's seed).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Per-request capacity decisions: stream index = request counter.
    capacity_seed: u64,
    /// Per-instance straggler/degraded decisions: stream index =
    /// instance id.
    node_seed: u64,
    /// Per-instance hardware-failure instants: stream index = instance
    /// id (a separate family so enabling one fault class never shifts
    /// another's draws).
    hw_seed: u64,
    /// Per-request zone-brownout denial decisions: stream index = zone
    /// request counter (its own family, so arming the zone model never
    /// shifts capacity/node/hw draws).
    zone_seed: u64,
    requests: u64,
    zone_requests: u64,
    counts: FaultCounts,
}

impl FaultInjector {
    /// Creates an injector for `plan`, deriving independent stream
    /// families from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        FaultInjector {
            plan,
            capacity_seed: mix_seed(seed, 0xCAFA_C171),
            node_seed: mix_seed(seed, 0x0DE6_4ADE),
            hw_seed: mix_seed(seed, 0x4A4D_FA11),
            zone_seed: mix_seed(seed, 0x5A0E_FA17),
            requests: 0,
            zone_requests: 0,
            counts: FaultCounts::default(),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides whether the next provisioning request is denied for
    /// capacity. Consumes one request index either way, so a denied
    /// request and its retry see independent draws regardless of what
    /// happens in between.
    pub fn capacity_fault(&mut self) -> bool {
        let k = self.requests;
        self.requests += 1;
        if self.plan.capacity_failure_prob <= 0.0 {
            return false;
        }
        let denied =
            Prng::for_stream(self.capacity_seed, k).next_f64() < self.plan.capacity_failure_prob;
        if denied {
            self.counts.capacity_failures += 1;
        }
        denied
    }

    /// Decides the fault assignment of a freshly provisioned instance.
    /// Pure in `(seed, id)`: the same instance index gets the same
    /// faults in every run, independent of request batching.
    pub fn instance_faults(&mut self, id: InstanceId) -> InstanceFaults {
        let mut out = InstanceFaults::healthy();
        if self.plan.straggler_prob > 0.0 || self.plan.degraded_prob > 0.0 {
            let mut rng = Prng::for_stream(self.node_seed, id.raw());
            // Fixed draw order (straggler, then degraded) keeps each
            // class's decisions stable when the other is toggled off —
            // both draws happen whenever either class is active.
            let s = rng.next_f64();
            let d = rng.next_f64();
            if s < self.plan.straggler_prob {
                out.delay_factor = self.plan.straggler_factor;
                self.counts.stragglers += 1;
            }
            if d < self.plan.degraded_prob {
                out.slowdown = self.plan.degraded_factor;
                self.counts.degraded_nodes += 1;
            }
        }
        if self.plan.hw_failure_rate_per_hour > 0.0 {
            let mut rng = Prng::for_stream(self.hw_seed, id.raw());
            out.fail_after_hours = Some(
                Distribution::Exponential {
                    rate: self.plan.hw_failure_rate_per_hour,
                }
                .sample(&mut rng),
            );
        }
        out
    }

    /// Decides whether a provisioning request targeting `zone` at `at`
    /// is denied by a correlated zone event. Outage denial is
    /// deterministic (the window is declared, not sampled); brownout
    /// denial consumes one zone-stream index per call, so a denied
    /// request and its retry see independent draws. With no zone event
    /// declared this draws nothing and always returns `false`.
    pub fn zone_denial(&mut self, zone: u32, at: SimTime) -> bool {
        if !self.plan.zones.is_active() {
            return false;
        }
        if let Some(w) = &self.plan.zones.outage {
            if w.zone == zone && w.contains(at) {
                self.counts.zone_denials += 1;
                return true;
            }
        }
        let k = self.zone_requests;
        self.zone_requests += 1;
        let brownout = self.plan.zones.brownout.as_ref();
        let prob = self.plan.zones.brownout_denial_prob;
        if prob <= 0.0 || !brownout.is_some_and(|w| w.zone == zone && w.contains(at)) {
            return false;
        }
        let denied = Prng::for_stream(self.zone_seed, k).next_f64() < prob;
        if denied {
            self.counts.zone_denials += 1;
        }
        denied
    }

    /// The hand-over delay multiplier a zone brownout imposes on an
    /// instance provisioned in `zone` at `at` (1.0 when no brownout
    /// applies). Deterministic — the window and factor are declared.
    pub fn zone_delay_factor(&self, zone: u32, at: SimTime) -> f64 {
        match &self.plan.zones.brownout {
            Some(w) if w.zone == zone && w.contains(at) => self.plan.zones.brownout_delay_factor,
            _ => 1.0,
        }
    }

    /// The instant at which an instance provisioned in `zone` with
    /// hand-over at `ready_at` is killed by the declared zone outage,
    /// if its lifetime intersects the window.
    pub fn zone_kill_at(&self, zone: u32, ready_at: SimTime) -> Option<SimTime> {
        let w = self.plan.zones.outage.as_ref()?;
        if w.zone != zone || ready_at >= w.end() {
            return None;
        }
        Some(w.start().max(ready_at))
    }

    /// Records that a scheduled zone-outage kill actually struck.
    pub fn note_zone_kill(&mut self) {
        self.counts.zone_outage_kills += 1;
    }

    /// Records that a scheduled hardware failure actually struck.
    pub fn note_hw_failure(&mut self) {
        self.counts.hw_failures += 1;
    }

    /// Faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stormy() -> FaultPlan {
        FaultPlan {
            capacity_failure_prob: 0.5,
            straggler_prob: 0.3,
            straggler_factor: 40.0,
            hw_failure_rate_per_hour: 2.0,
            degraded_prob: 0.25,
            degraded_factor: 1.8,
            checkpoint_corruption_prob: 0.2,
            zones: ZonePlan::none(),
        }
    }

    fn zoned() -> ZonePlan {
        ZonePlan {
            zones: 2,
            brownout: Some(ZoneWindow {
                zone: 0,
                start_secs: 100.0,
                duration_secs: 200.0,
            }),
            brownout_denial_prob: 0.6,
            brownout_delay_factor: 10.0,
            outage: Some(ZoneWindow {
                zone: 0,
                start_secs: 400.0,
                duration_secs: 300.0,
            }),
        }
    }

    #[test]
    fn empty_plan_is_inactive_and_draws_nothing() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert_eq!(plan, FaultPlan::default());
        let mut inj = FaultInjector::new(plan, 7);
        for _ in 0..100 {
            assert!(!inj.capacity_fault());
        }
        for i in 0..100 {
            assert_eq!(
                inj.instance_faults(InstanceId::new(i)),
                InstanceFaults::healthy()
            );
        }
        assert_eq!(inj.counts(), FaultCounts::default());
    }

    #[test]
    fn plan_validation_rejects_garbage() {
        let cases: Vec<(&str, FaultPlan)> = vec![
            (
                "prob > 1",
                FaultPlan {
                    capacity_failure_prob: 1.5,
                    ..FaultPlan::none()
                },
            ),
            (
                "negative prob",
                FaultPlan {
                    straggler_prob: -0.1,
                    ..FaultPlan::none()
                },
            ),
            (
                "nan prob",
                FaultPlan {
                    checkpoint_corruption_prob: f64::NAN,
                    ..FaultPlan::none()
                },
            ),
            (
                "factor < 1",
                FaultPlan {
                    straggler_factor: 0.5,
                    ..FaultPlan::none()
                },
            ),
            (
                "infinite factor",
                FaultPlan {
                    degraded_factor: f64::INFINITY,
                    ..FaultPlan::none()
                },
            ),
            (
                "negative rate",
                FaultPlan {
                    hw_failure_rate_per_hour: -2.0,
                    ..FaultPlan::none()
                },
            ),
        ];
        for (what, plan) in cases {
            let err = plan.validate().expect_err(what);
            assert!(matches!(err, RbError::InvalidConfig(_)), "{what}: {err:?}");
        }
        assert!(stormy().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn injector_rejects_invalid_plans() {
        let _ = FaultInjector::new(
            FaultPlan {
                capacity_failure_prob: 2.0,
                ..FaultPlan::none()
            },
            1,
        );
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_entity() {
        let mut a = FaultInjector::new(stormy(), 42);
        let mut b = FaultInjector::new(stormy(), 42);
        for _ in 0..50 {
            assert_eq!(a.capacity_fault(), b.capacity_fault());
        }
        for i in 0..50 {
            assert_eq!(
                a.instance_faults(InstanceId::new(i)),
                b.instance_faults(InstanceId::new(i))
            );
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().total() > 0, "a stormy plan injects something");
    }

    #[test]
    fn instance_decisions_are_independent_of_query_order() {
        // Instance 5's faults are the same whether or not instances
        // 0..4 were asked about first — the counter-based seeding the
        // spot stream already uses.
        let mut ordered = FaultInjector::new(stormy(), 9);
        for i in 0..5 {
            let _ = ordered.instance_faults(InstanceId::new(i));
        }
        let via_order = ordered.instance_faults(InstanceId::new(5));
        let mut direct = FaultInjector::new(stormy(), 9);
        assert_eq!(direct.instance_faults(InstanceId::new(5)), via_order);
    }

    #[test]
    fn toggling_one_class_does_not_shift_another() {
        // Disabling hardware failures must not change which instances
        // straggle: the families are seeded independently.
        let mut with_hw = FaultInjector::new(stormy(), 11);
        let mut without_hw = FaultInjector::new(
            FaultPlan {
                hw_failure_rate_per_hour: 0.0,
                ..stormy()
            },
            11,
        );
        for i in 0..64 {
            let a = with_hw.instance_faults(InstanceId::new(i));
            let b = without_hw.instance_faults(InstanceId::new(i));
            assert_eq!(a.delay_factor, b.delay_factor, "instance {i}");
            assert_eq!(a.slowdown, b.slowdown, "instance {i}");
            assert!(b.fail_after_hours.is_none());
        }
    }

    #[test]
    fn inactive_zone_plan_draws_nothing_and_never_denies() {
        let mut inj = FaultInjector::new(stormy(), 7);
        for k in 0..50 {
            assert!(!inj.zone_denial(0, SimTime::from_secs(k)));
            assert_eq!(inj.zone_delay_factor(0, SimTime::from_secs(k)), 1.0);
            assert_eq!(inj.zone_kill_at(0, SimTime::from_secs(k)), None);
        }
        assert_eq!(inj.counts().zone_denials, 0);
        assert_eq!(inj.counts().zone_outage_kills, 0);
    }

    #[test]
    fn zone_events_only_strike_the_declared_zone_and_window() {
        let plan = FaultPlan {
            zones: zoned(),
            ..FaultPlan::none()
        };
        assert!(plan.is_active());
        let mut inj = FaultInjector::new(plan, 5);
        // Outage denial is deterministic inside the window, zone 0 only.
        assert!(inj.zone_denial(0, SimTime::from_secs(450)));
        assert!(!inj.zone_denial(1, SimTime::from_secs(450)));
        assert!(!inj.zone_denial(0, SimTime::from_secs(701)));
        // Brownout delay factor applies in-window, in-zone only.
        assert_eq!(inj.zone_delay_factor(0, SimTime::from_secs(150)), 10.0);
        assert_eq!(inj.zone_delay_factor(1, SimTime::from_secs(150)), 1.0);
        assert_eq!(inj.zone_delay_factor(0, SimTime::from_secs(350)), 1.0);
        // Outage kills: an instance handed over before the window dies at
        // its start; one handed over inside dies immediately; one handed
        // over after it escapes.
        assert_eq!(
            inj.zone_kill_at(0, SimTime::from_secs(100)),
            Some(SimTime::from_secs(400))
        );
        assert_eq!(
            inj.zone_kill_at(0, SimTime::from_secs(500)),
            Some(SimTime::from_secs(500))
        );
        assert_eq!(inj.zone_kill_at(0, SimTime::from_secs(700)), None);
        assert_eq!(inj.zone_kill_at(1, SimTime::from_secs(100)), None);
    }

    #[test]
    fn brownout_denials_are_deterministic_and_roughly_match_probability() {
        let run = || {
            let plan = FaultPlan {
                zones: ZonePlan {
                    outage: None,
                    ..zoned()
                },
                ..FaultPlan::none()
            };
            let mut inj = FaultInjector::new(plan, 13);
            let denials: Vec<bool> = (0..2000)
                .map(|_| inj.zone_denial(0, SimTime::from_secs(150)))
                .collect();
            (denials, inj.counts().zone_denials)
        };
        let (a, denied) = run();
        let (b, _) = run();
        assert_eq!(a, b);
        let frac = denied as f64 / 2000.0;
        assert!((frac - 0.6).abs() < 0.05, "denial rate {frac}");
    }

    #[test]
    fn toggling_zones_does_not_shift_other_families() {
        // Arming the zone model must not change which requests are
        // capacity-denied or which instances straggle.
        let mut plain = FaultInjector::new(stormy(), 11);
        let mut zoned_inj = FaultInjector::new(
            FaultPlan {
                zones: zoned(),
                ..stormy()
            },
            11,
        );
        for i in 0..64 {
            let _ = zoned_inj.zone_denial(0, SimTime::from_secs(i));
            assert_eq!(plain.capacity_fault(), zoned_inj.capacity_fault(), "req {i}");
            assert_eq!(
                plain.instance_faults(InstanceId::new(i)),
                zoned_inj.instance_faults(InstanceId::new(i)),
                "instance {i}"
            );
        }
    }

    #[test]
    fn zone_plan_validation_rejects_garbage() {
        let bad_zone = ZonePlan {
            outage: Some(ZoneWindow {
                zone: 2,
                start_secs: 0.0,
                duration_secs: 1.0,
            }),
            ..zoned()
        };
        assert!(bad_zone.validate().is_err(), "window names missing zone");
        assert!(
            ZonePlan {
                zones: 0,
                ..zoned()
            }
            .validate()
            .is_err(),
            "zero zones"
        );
        let bad_prob = ZonePlan {
            brownout_denial_prob: 1.5,
            ..zoned()
        };
        assert!(bad_prob.validate().is_err());
        let bad_factor = ZonePlan {
            brownout_delay_factor: 0.5,
            ..zoned()
        };
        assert!(bad_factor.validate().is_err());
        let bad_window = ZonePlan {
            outage: Some(ZoneWindow {
                zone: 0,
                start_secs: f64::NAN,
                duration_secs: 1.0,
            }),
            ..zoned()
        };
        assert!(bad_window.validate().is_err());
        assert!(zoned().validate().is_ok());
        assert!(ZonePlan::none().validate().is_ok());
        assert!(!ZonePlan::none().is_active());
    }

    #[test]
    fn fault_rates_roughly_match_probabilities() {
        let mut inj = FaultInjector::new(stormy(), 3);
        let n = 2000u64;
        for _ in 0..n {
            let _ = inj.capacity_fault();
        }
        for i in 0..n {
            let _ = inj.instance_faults(InstanceId::new(i));
        }
        let c = inj.counts();
        let frac = |x: u64| x as f64 / n as f64;
        assert!((frac(c.capacity_failures) - 0.5).abs() < 0.05);
        assert!((frac(c.stragglers) - 0.3).abs() < 0.05);
        assert!((frac(c.degraded_nodes) - 0.25).abs() < 0.05);
    }
}
