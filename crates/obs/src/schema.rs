//! Schema validation for the JSONL trace export.
//!
//! The schema (enforced here, produced by [`crate::export::export_jsonl`]):
//!
//! * Every line is a standalone JSON object.
//! * **Event lines** carry `seq` (integer, strictly increasing from 0),
//!   `t_ms` (non-negative integer virtual time), `scope`/`name`/`lane`
//!   (non-empty strings, `lane` one of `global|controller|planner|cloud`
//!   or `node:<n>|trial:<n>|stage:<n>|job:<n>|bracket:<n>`), `kind`
//!   (`instant`, `span`, `gauge`, `span_start`, or `span_end`), and
//!   `fields` (object). `span` lines add `end_ms >= t_ms`; `gauge`
//!   lines add a *finite* numeric or null `value` (non-finite readings
//!   must be exported as `null`; a numeric literal that overflows to
//!   infinity is rejected).
//! * **Explicit span pairs** — `span_start` lines carry a fresh,
//!   never-reused `span_id` (and optionally a `parent_id` naming an
//!   earlier `span_id`); `span_end` lines carry the `span_id` of an
//!   open span and must not be stamped earlier than its start
//!   (non-monotone span timestamps are rejected). A `span_end` whose
//!   start was never seen is *unpaired* and rejected — unless the
//!   stream is a bounded-ring tail (a trailing `obs.dropped_events`
//!   note), where the start may legitimately have been evicted.
//! * **Service job events** (`job.submit`/`job.queued`/`job.dispatch`/
//!   `job.reject`/`job.done`) must sit on a `job:<n>` lane.
//! * **Metric lines** carry `metric` (`counter` or `histogram`) and
//!   follow all event lines. Counters carry an integer `value`;
//!   histograms carry `count`/`min`/`max`/`p50`/`p90` (same finite-or-
//!   null rule).

use crate::json::{parse_json, Json};
use std::collections::BTreeMap;

/// Counts from a successful validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonlStats {
    pub events: usize,
    pub counters: usize,
    pub histograms: usize,
}

fn lane_ok(lane: &str) -> bool {
    match lane {
        "global" | "controller" | "planner" | "cloud" => true,
        _ => lane.split_once(':').is_some_and(|(kind, id)| {
            matches!(kind, "node" | "trial" | "stage" | "job" | "bracket")
                && !id.is_empty()
                && id.bytes().all(|b| b.is_ascii_digit())
        }),
    }
}

fn require_str(obj: &Json, key: &str, line_no: usize) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .ok_or_else(|| format!("line {line_no}: missing or empty string `{key}`"))
}

fn require_u64(obj: &Json, key: &str, line_no: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {line_no}: missing or non-integer `{key}`"))
}

fn require_num_or_null(obj: &Json, key: &str, line_no: usize) -> Result<(), String> {
    match obj.get(key) {
        // Finite only: JSON has no NaN/inf, but an overflowing literal
        // like 1e999 parses to f64::INFINITY. Producers must map
        // non-finite values to null (write_json_f64 does).
        Some(Json::Num(v)) if v.is_finite() => Ok(()),
        Some(Json::Num(_)) => Err(format!("line {line_no}: non-finite number in `{key}`")),
        Some(Json::Null) => Ok(()),
        _ => Err(format!("line {line_no}: missing or non-numeric `{key}`")),
    }
}

/// Pairing state for explicit `span_start`/`span_end` spans, threaded
/// through the event lines of one stream.
#[derive(Debug, Default)]
struct SpanState {
    /// `span_id` → start `t_ms` for spans opened and not yet closed.
    open: BTreeMap<u64, u64>,
    /// Every `span_id` ever opened (ids must never be reused).
    seen: std::collections::BTreeSet<u64>,
    /// `span_end` lines whose start was never seen. Only legal when the
    /// stream turns out to be a bounded-ring tail (checked at the end,
    /// once the `dropped_events` note is visible).
    unpaired_ends: Vec<usize>,
}

fn validate_event_line(
    obj: &Json,
    line_no: usize,
    expected_seq: usize,
    spans: &mut SpanState,
) -> Result<(), String> {
    let seq = require_u64(obj, "seq", line_no)?;
    if seq != expected_seq as u64 {
        return Err(format!(
            "line {line_no}: seq {seq} out of order (expected {expected_seq})"
        ));
    }
    let t_ms = require_u64(obj, "t_ms", line_no)?;
    require_str(obj, "scope", line_no)?;
    let name = require_str(obj, "name", line_no)?;
    let lane = require_str(obj, "lane", line_no)?;
    if !lane_ok(&lane) {
        return Err(format!("line {line_no}: bad lane `{lane}`"));
    }
    if matches!(
        name.as_str(),
        "job.submit" | "job.queued" | "job.dispatch" | "job.reject" | "job.done"
    ) && !lane.starts_with("job:")
    {
        return Err(format!(
            "line {line_no}: service event `{name}` on non-job lane `{lane}`"
        ));
    }
    if !obj.get("fields").is_some_and(Json::is_obj) {
        return Err(format!("line {line_no}: `fields` must be an object"));
    }
    let kind = require_str(obj, "kind", line_no)?;
    match kind.as_str() {
        "instant" => Ok(()),
        "span" => {
            let end_ms = require_u64(obj, "end_ms", line_no)?;
            if end_ms < t_ms {
                return Err(format!("line {line_no}: span ends before it starts"));
            }
            Ok(())
        }
        "gauge" => require_num_or_null(obj, "value", line_no),
        "span_start" => {
            let id = require_u64(obj, "span_id", line_no)?;
            if !spans.seen.insert(id) {
                return Err(format!("line {line_no}: span_id {id} reused"));
            }
            if let Some(parent) = obj.get("parent_id") {
                let parent = parent
                    .as_u64()
                    .ok_or_else(|| format!("line {line_no}: non-integer `parent_id`"))?;
                if !spans.seen.contains(&parent) {
                    return Err(format!(
                        "line {line_no}: parent_id {parent} names an unknown span"
                    ));
                }
            }
            spans.open.insert(id, t_ms);
            Ok(())
        }
        "span_end" => {
            let id = require_u64(obj, "span_id", line_no)?;
            match spans.open.remove(&id) {
                Some(start_ms) if t_ms < start_ms => Err(format!(
                    "line {line_no}: non-monotone span timestamps (span {id} ends at \
                     {t_ms}ms before its {start_ms}ms start)"
                )),
                Some(_) => Ok(()),
                None if spans.seen.contains(&id) => {
                    Err(format!("line {line_no}: span_id {id} closed twice"))
                }
                None => {
                    spans.unpaired_ends.push(line_no);
                    Ok(())
                }
            }
        }
        other => Err(format!("line {line_no}: unknown kind `{other}`")),
    }
}

fn validate_metric_line(obj: &Json, line_no: usize) -> Result<bool, String> {
    let metric = require_str(obj, "metric", line_no)?;
    require_str(obj, "scope", line_no)?;
    require_str(obj, "name", line_no)?;
    match metric.as_str() {
        "counter" => {
            require_u64(obj, "value", line_no)?;
            Ok(true)
        }
        "histogram" => {
            require_u64(obj, "count", line_no)?;
            for key in ["min", "max", "p50", "p90"] {
                require_num_or_null(obj, key, line_no)?;
            }
            Ok(false)
        }
        other => Err(format!("line {line_no}: unknown metric kind `{other}`")),
    }
}

/// Validates a JSONL trace export against the schema above.
pub fn validate_jsonl(text: &str) -> Result<JsonlStats, String> {
    let mut stats = JsonlStats {
        events: 0,
        counters: 0,
        histograms: 0,
    };
    let mut in_metrics = false;
    let mut spans = SpanState::default();
    let mut dropped_noted = false;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            return Err(format!("line {line_no}: blank line"));
        }
        let obj = parse_json(line).map_err(|e| format!("line {line_no}: {e}"))?;
        if obj.get("metric").is_some() {
            in_metrics = true;
            if validate_metric_line(&obj, line_no)? {
                stats.counters += 1;
                if obj.get("scope").and_then(Json::as_str) == Some("obs")
                    && obj.get("name").and_then(Json::as_str) == Some("dropped_events")
                {
                    dropped_noted = true;
                }
            } else {
                stats.histograms += 1;
            }
        } else {
            if in_metrics {
                return Err(format!("line {line_no}: event line after metric lines"));
            }
            validate_event_line(&obj, line_no, stats.events, &mut spans)?;
            stats.events += 1;
        }
    }
    // Unpaired span_end lines are only legal in a bounded-ring tail,
    // where the matching span_start may have been evicted (flagged by
    // the trailing dropped-events note).
    if !dropped_noted {
        if let Some(&line_no) = spans.unpaired_ends.first() {
            return Err(format!("line {line_no}: unpaired span_end"));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::export_jsonl;
    use crate::memory::MemoryRecorder;
    use crate::recorder::{Lane, Recorder};
    use rb_core::SimTime;

    fn sample_export() -> String {
        let rec = MemoryRecorder::new();
        rec.instant(
            SimTime::from_millis(1),
            "exec",
            "a",
            Lane::Global,
            Vec::new(),
        );
        rec.span(
            SimTime::from_millis(1),
            SimTime::from_millis(2),
            "exec",
            "b",
            Lane::Node(1),
            vec![("k", 1u64.into())],
        );
        rec.gauge(SimTime::from_millis(2), "ctrl", "c", Lane::Controller, 0.5);
        rec.counter_add("sim", "hits", 3);
        rec.histogram("sim", "h", 2.0);
        export_jsonl(&rec.finish())
    }

    #[test]
    fn accepts_own_exports() {
        let stats = validate_jsonl(&sample_export()).expect("export validates");
        assert_eq!(
            stats,
            JsonlStats {
                events: 3,
                counters: 1,
                histograms: 1
            }
        );
    }

    #[test]
    fn rejects_corruption() {
        let good = sample_export();
        // Truncated JSON on the first line.
        let bad = good.replacen("{\"seq\":0", "{\"seq\":", 1);
        assert!(validate_jsonl(&bad).is_err());
        // Out-of-order sequence numbers.
        let bad = good.replace("\"seq\":2", "\"seq\":7");
        assert!(validate_jsonl(&bad).unwrap_err().contains("out of order"));
        // Unknown lane.
        let bad = good.replace("\"lane\":\"node:1\"", "\"lane\":\"gpu:1\"");
        assert!(validate_jsonl(&bad).unwrap_err().contains("bad lane"));
        // Span ending before it starts.
        let bad = good.replace("\"end_ms\":2", "\"end_ms\":0");
        assert!(validate_jsonl(&bad).unwrap_err().contains("ends before"));
        // Event after metrics.
        let mut lines: Vec<&str> = good.lines().collect();
        let event = lines[0];
        lines.push(event);
        let shuffled: String = lines.join("\n");
        assert!(validate_jsonl(&shuffled)
            .unwrap_err()
            .contains("after metric"));
    }

    #[test]
    fn non_finite_gauges_round_trip_as_null() {
        // A NaN drift factor (the pre-fix rb-ctrl bug) must export as
        // null and still validate.
        let rec = MemoryRecorder::new();
        rec.gauge(
            SimTime::ZERO,
            "ctrl",
            "drift_factor",
            Lane::Controller,
            f64::NAN,
        );
        rec.gauge(
            SimTime::from_millis(1),
            "ctrl",
            "drift_factor",
            Lane::Controller,
            f64::INFINITY,
        );
        rec.histogram("sim", "h", f64::NEG_INFINITY);
        let text = export_jsonl(&rec.finish());
        assert!(text.contains("\"value\":null"), "NaN gauge exports as null");
        assert!(
            !text.contains("NaN") && !text.contains("inf"),
            "no bare non-finite literals"
        );
        let stats = validate_jsonl(&text).expect("null-mapped export validates");
        assert_eq!(stats.events, 2);
    }

    #[test]
    fn rejects_non_finite_numbers() {
        let good = sample_export();
        // An overflowing literal parses to f64::INFINITY — the schema
        // must reject it rather than accept an unreadable value.
        let bad = good.replace("\"value\":0.5", "\"value\":1e999");
        assert!(validate_jsonl(&bad).unwrap_err().contains("non-finite"));
    }

    #[test]
    fn lane_grammar() {
        assert!(lane_ok("node:12"));
        assert!(lane_ok("global"));
        assert!(lane_ok("bracket:0"));
        assert!(!lane_ok("node:"));
        assert!(!lane_ok("node:x"));
        assert!(!lane_ok("worker:1"));
        assert!(!lane_ok("bracket:"));
    }

    fn span_pair_export() -> String {
        use crate::recorder::SpanTracker;
        let rec = MemoryRecorder::new();
        let mut spans = SpanTracker::new();
        let (run, _) = spans.open();
        rec.span_start(
            SimTime::from_millis(1),
            "exec",
            "run",
            Lane::Global,
            run,
            None,
            Vec::new(),
        );
        let (stage, parent) = spans.open();
        rec.span_start(
            SimTime::from_millis(2),
            "exec",
            "stage",
            Lane::Stage(0),
            stage,
            parent,
            Vec::new(),
        );
        rec.span_end(
            SimTime::from_millis(5),
            "exec",
            "stage",
            Lane::Stage(0),
            spans.close(),
            Vec::new(),
        );
        rec.span_end(
            SimTime::from_millis(6),
            "exec",
            "run",
            Lane::Global,
            spans.close(),
            Vec::new(),
        );
        export_jsonl(&rec.finish())
    }

    #[test]
    fn accepts_explicit_span_pairs() {
        let stats = validate_jsonl(&span_pair_export()).expect("span pairs validate");
        assert_eq!(stats.events, 4);
    }

    #[test]
    fn rejects_span_pairing_violations() {
        let good = span_pair_export();
        // An end whose start was never emitted (and no drop note).
        let unpaired: String = good
            .lines()
            .filter(|l| !(l.contains("span_start") && l.contains("\"span_id\":1")))
            .collect::<Vec<_>>()
            .join("\n")
            .replace("\"seq\":2", "\"seq\":1")
            .replace("\"seq\":3", "\"seq\":2");
        assert!(validate_jsonl(&unpaired)
            .unwrap_err()
            .contains("unpaired span_end"));
        // The same tail is legal when the stream is a bounded-ring tail.
        let tail = format!(
            "{unpaired}\n{{\"metric\":\"counter\",\"scope\":\"obs\",\"name\":\"dropped_events\",\"value\":1}}"
        );
        validate_jsonl(&tail).expect("ring tails may open mid-span");
        // Reused span id.
        let reused = good.replace("\"span_id\":1,\"parent_id\":0", "\"span_id\":0");
        assert!(validate_jsonl(&reused).unwrap_err().contains("reused"));
        // Non-monotone: the stage span ends before it starts.
        let bad = good.replace("{\"seq\":2,\"t_ms\":5", "{\"seq\":2,\"t_ms\":1");
        assert!(validate_jsonl(&bad)
            .unwrap_err()
            .contains("non-monotone span timestamps"));
        // Double close.
        let double = good.replace(
            "{\"seq\":3,\"t_ms\":6,\"scope\":\"exec\",\"name\":\"run\",\"lane\":\"global\",\"kind\":\"span_end\",\"span_id\":0",
            "{\"seq\":3,\"t_ms\":6,\"scope\":\"exec\",\"name\":\"stage\",\"lane\":\"stage:0\",\"kind\":\"span_end\",\"span_id\":1",
        );
        assert!(validate_jsonl(&double)
            .unwrap_err()
            .contains("closed twice"));
        // Parent naming an unknown span.
        let orphan = good.replace("\"parent_id\":0", "\"parent_id\":9");
        assert!(validate_jsonl(&orphan)
            .unwrap_err()
            .contains("unknown span"));
    }

    #[test]
    fn service_job_events_must_sit_on_job_lanes() {
        let rec = MemoryRecorder::new();
        rec.instant(
            SimTime::from_millis(1),
            "serve",
            "job.dispatch",
            Lane::Job(2),
            vec![("tenant", 0u64.into())],
        );
        let good = export_jsonl(&rec.finish());
        validate_jsonl(&good).expect("job event on job lane validates");
        let bad = good.replace("\"lane\":\"job:2\"", "\"lane\":\"global\"");
        assert!(validate_jsonl(&bad).unwrap_err().contains("non-job lane"));
    }
}
