//! The simulated cloud provider.
//!
//! [`SimProvider`] services provisioning requests the way EC2 does from the
//! job's point of view: a request is acknowledged immediately, and each
//! instance becomes available after a *scaling latency* (provider queuing
//! delay, §4.1) sampled per instance. The paper assumes requests are always
//! eventually served (§3); a configurable fleet quota is still provided so
//! tests can exercise the error path.

use crate::billing::BillingMeter;
use crate::catalog::InstanceType;
use crate::chaos::{FaultCounts, FaultInjector, FaultPlan, InstanceFaults};
use rb_core::ids::IdGen;
use rb_core::{mix_seed, Distribution, InstanceId, Prng, RbError, Result, SimDuration, SimTime};
use rb_obs::{Lane, RecorderHandle};
use std::collections::{BTreeMap, BTreeSet};

/// Lifecycle state of one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// Requested; becomes ready at the contained time.
    Pending {
        /// When the provider will hand over the instance.
        ready_at: SimTime,
    },
    /// Handed over and billing; available to the job since the contained
    /// time.
    Running {
        /// When the instance became ready.
        since: SimTime,
    },
    /// Terminated at the contained time.
    Terminated {
        /// When the instance was released.
        at: SimTime,
    },
}

/// Static configuration of the simulated provider.
#[derive(Debug, Clone)]
pub struct ProviderConfig {
    /// The (homogeneous) worker instance shape.
    pub instance_type: InstanceType,
    /// Scaling latency: seconds from request to hand-over, sampled per
    /// instance.
    pub provision_delay_secs: Distribution,
    /// Maximum simultaneously non-terminated instances; `None` = unlimited
    /// (the paper's assumption).
    pub quota: Option<usize>,
    /// Spot interruption rate per instance-hour (Poisson). Zero (the
    /// default) models uninterruptible on-demand capacity; the paper
    /// defers pre-emptible capacity, so this is an extension.
    pub interruption_rate_per_hour: f64,
}

impl ProviderConfig {
    /// A provider with a constant hand-over delay and no quota.
    pub fn with_constant_delay(instance_type: InstanceType, delay: SimDuration) -> Self {
        ProviderConfig {
            instance_type,
            provision_delay_secs: Distribution::Constant(delay.as_secs_f64()),
            quota: None,
            interruption_rate_per_hour: 0.0,
        }
    }

    /// Checks the configuration: the hand-over delay distribution must be
    /// well-formed and the interruption rate finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        self.provision_delay_secs.validate()?;
        if !self.interruption_rate_per_hour.is_finite() || self.interruption_rate_per_hour < 0.0 {
            return Err(RbError::InvalidConfig(format!(
                "interruption_rate_per_hour must be finite and non-negative, got {}",
                self.interruption_rate_per_hour
            )));
        }
        Ok(())
    }
}

/// The simulated provider: owns the fleet, samples hand-over delays, and
/// feeds the [`BillingMeter`].
#[derive(Debug)]
pub struct SimProvider {
    config: ProviderConfig,
    rng: Prng,
    /// Base seed for per-instance spot-interruption streams. Each
    /// instance draws its interruption offset from
    /// `Prng::for_stream(interrupt_seed, id.raw())`, so the instant an
    /// instance is reclaimed depends only on the provider seed and the
    /// instance's creation index — never on how many other draws (delay
    /// samples, other instances) happened first. Two runs that provision
    /// the same instance index see the same interruption, regardless of
    /// controller polling cadence or interleaved requests.
    interrupt_seed: u64,
    ids: IdGen<InstanceId>,
    fleet: BTreeMap<InstanceId, InstanceState>,
    /// Pre-sampled spot interruption instants (absent for on-demand or
    /// when the rate is zero). Sampled at provisioning so results are
    /// independent of query order.
    preempt_at: BTreeMap<InstanceId, SimTime>,
    meter: BillingMeter,
    /// Fault injector (absent by default — and absent means *zero*
    /// extra RNG draws, so an uninjected provider is bit-identical to
    /// one that never heard of faults).
    faults: Option<FaultInjector>,
    /// Work-unit slowdown factors for degraded instances (> 1.0).
    slowdown: BTreeMap<InstanceId, f64>,
    /// Instances whose scheduled reclaim is an injected hardware
    /// failure rather than a spot interruption.
    hw_origin: BTreeSet<InstanceId>,
    /// The zone new capacity is requested from. Zones are a pure
    /// labelling of the fleet (placement within one region); they only
    /// matter when an armed fault plan declares zone-correlated events.
    home_zone: u32,
    /// Zone each instance was provisioned (or adopted) into.
    zones: BTreeMap<InstanceId, u32>,
    /// Instances whose scheduled reclaim is a zone outage rather than
    /// a spot interruption or hardware failure.
    zone_origin: BTreeSet<InstanceId>,
    /// Observability sink (no-op by default). The recorder only
    /// receives lifecycle facts; provisioning randomness and billing
    /// are oblivious to it.
    recorder: RecorderHandle,
}

impl SimProvider {
    /// Creates a provider with its own deterministic randomness stream.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ProviderConfig::validate`] —
    /// a malformed delay distribution or interruption rate would
    /// otherwise sample garbage deep inside a run.
    pub fn new(config: ProviderConfig, seed: u64) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid provider config: {e}");
        }
        SimProvider {
            config,
            rng: Prng::seed_from_u64(seed),
            interrupt_seed: mix_seed(seed, 0x5107_1A7E),
            ids: IdGen::new(),
            fleet: BTreeMap::new(),
            preempt_at: BTreeMap::new(),
            meter: BillingMeter::new(),
            faults: None,
            slowdown: BTreeMap::new(),
            hw_origin: BTreeSet::new(),
            home_zone: 0,
            zones: BTreeMap::new(),
            zone_origin: BTreeSet::new(),
            recorder: RecorderHandle::noop(),
        }
    }

    /// Attaches an observability recorder; provisioning, hand-over,
    /// termination and preemption events are reported on the cloud lane.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Arms fault injection under `plan`, seeding decision streams from
    /// `seed` the same way the spot stream is seeded. An inactive plan
    /// leaves the provider untouched (no injector, no draws).
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan, seed: u64) {
        if plan.is_active() {
            self.faults = Some(FaultInjector::new(plan, seed));
        } else {
            plan.validate().expect("invalid fault plan");
            self.faults = None;
        }
    }

    /// Whether a fault injector is armed.
    pub fn faults_active(&self) -> bool {
        self.faults.is_some()
    }

    /// Faults injected so far (all zero without an injector).
    pub fn fault_counts(&self) -> FaultCounts {
        self.faults.as_ref().map(|f| f.counts()).unwrap_or_default()
    }

    /// Work-unit latency multiplier for an instance: 1.0 for healthy
    /// nodes, the plan's `degraded_factor` for injected-degraded ones.
    pub fn node_slowdown(&self, id: InstanceId) -> f64 {
        self.slowdown.get(&id).copied().unwrap_or(1.0)
    }

    /// The zone future provisioning requests will land in.
    pub fn home_zone(&self) -> u32 {
        self.home_zone
    }

    /// Moves future provisioning requests to `zone` (wrapped into the
    /// declared zone count). Existing instances keep the zone they were
    /// created in — moving the home zone is a *placement* decision, not
    /// a migration.
    pub fn set_home_zone(&mut self, zone: u32) {
        self.home_zone = zone % self.num_zones();
    }

    /// The zone `id` was provisioned into (zone 0 for unknown ids —
    /// every provider has at least one zone).
    pub fn instance_zone(&self, id: InstanceId) -> u32 {
        self.zones.get(&id).copied().unwrap_or(0)
    }

    /// Number of zones declared by the armed fault plan (1 without an
    /// injector: an unfaulted region is a single homogeneous domain).
    pub fn num_zones(&self) -> u32 {
        self.faults
            .as_ref()
            .map(|f| f.plan().zones.zones)
            .unwrap_or(1)
            .max(1)
    }

    /// Changes the spot-interruption rate for *future* provisioning.
    /// Instances already holding a sampled interruption keep it; this
    /// is what a mid-run market switch needs — the old fleet drains
    /// under the old market's rules while new capacity arrives under
    /// the new market's.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and non-negative.
    pub fn set_interruption_rate(&mut self, rate_per_hour: f64) {
        assert!(
            rate_per_hour.is_finite() && rate_per_hour >= 0.0,
            "interruption rate must be finite and non-negative, got {rate_per_hour}"
        );
        self.config.interruption_rate_per_hour = rate_per_hour;
    }

    /// The configured instance shape.
    pub fn instance_type(&self) -> &InstanceType {
        &self.config.instance_type
    }

    /// Requests `n` instances at time `now`.
    ///
    /// Returns the instance ids and the time each becomes ready. Billing for
    /// each instance starts at its ready time (as on EC2, where the billed
    /// period starts when the instance enters the running state).
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Provider`] if the request would exceed the
    /// quota, or [`RbError::Capacity`] if an armed fault injector denies
    /// the request (transient; retryable).
    pub fn provision(&mut self, n: usize, now: SimTime) -> Result<Vec<(InstanceId, SimTime)>> {
        if let Some(quota) = self.config.quota {
            let live = self.live_count();
            if live + n > quota {
                return Err(RbError::Provider(format!(
                    "quota exceeded: {live} live + {n} requested > {quota}"
                )));
            }
        }
        if let Some(inj) = self.faults.as_mut() {
            if inj.capacity_fault() {
                if self.recorder.enabled() {
                    self.recorder.instant(
                        now,
                        "cloud",
                        "fault.capacity",
                        Lane::Cloud,
                        vec![("requested", (n as u64).into())],
                    );
                    self.recorder.counter_add("cloud", "capacity_denied", 1);
                }
                return Err(RbError::Capacity(format!(
                    "request for {n} instance(s) denied"
                )));
            }
        }
        let zone = self.home_zone;
        if let Some(inj) = self.faults.as_mut() {
            if inj.zone_denial(zone, now) {
                if self.recorder.enabled() {
                    self.recorder.instant(
                        now,
                        "cloud",
                        "fault.zone_denied",
                        Lane::Cloud,
                        vec![("zone", (zone as u64).into()), ("requested", (n as u64).into())],
                    );
                    self.recorder.counter_add("cloud", "zone_denied", 1);
                }
                return Err(RbError::Capacity(format!(
                    "zone {zone}: request for {n} instance(s) denied"
                )));
            }
        }
        // Brownout hand-over inflation is a pure function of (zone,
        // time) — no draw, so an inactive zone plan changes nothing.
        let zone_factor = self
            .faults
            .as_ref()
            .map_or(1.0, |inj| inj.zone_delay_factor(zone, now));
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let delay =
                SimDuration::from_secs_f64(self.config.provision_delay_secs.sample(&mut self.rng));
            let id = self.ids.next();
            let fault = match self.faults.as_mut() {
                Some(inj) => inj.instance_faults(id),
                None => InstanceFaults::healthy(),
            };
            // Stragglers and brownouts inflate the sampled delay;
            // healthy instances keep the exact duration (no f64
            // round-trip).
            let total_factor = fault.delay_factor * zone_factor;
            let ready_at = if total_factor > 1.0 {
                now + SimDuration::from_secs_f64(delay.as_secs_f64() * total_factor)
            } else {
                now + delay
            };
            self.fleet.insert(id, InstanceState::Pending { ready_at });
            self.zones.insert(id, zone);
            if self.config.interruption_rate_per_hour > 0.0 {
                // Per-instance forked stream: the draw is a pure function
                // of (provider seed, instance index), so interruption
                // traces are identical across runs that differ only in
                // polling cadence or unrelated provisioning.
                let mut irng = Prng::for_stream(self.interrupt_seed, id.raw());
                let hours = Distribution::Exponential {
                    rate: self.config.interruption_rate_per_hour,
                }
                .sample(&mut irng);
                self.preempt_at
                    .insert(id, ready_at + SimDuration::from_secs_f64(hours * 3600.0));
            }
            if fault.slowdown > 1.0 {
                self.slowdown.insert(id, fault.slowdown);
                if self.recorder.enabled() {
                    self.recorder.instant(
                        now,
                        "cloud",
                        "fault.degraded",
                        Lane::Cloud,
                        vec![("instance", id.raw().into())],
                    );
                    self.recorder.counter_add("cloud", "degraded_nodes", 1);
                }
            }
            if fault.delay_factor > 1.0 && self.recorder.enabled() {
                self.recorder.instant(
                    now,
                    "cloud",
                    "fault.straggler",
                    Lane::Cloud,
                    vec![
                        ("instance", id.raw().into()),
                        ("ready_ms", ready_at.as_millis().into()),
                    ],
                );
                self.recorder.counter_add("cloud", "stragglers", 1);
            }
            if let Some(hours) = fault.fail_after_hours {
                // A hardware failure reclaims the instance exactly like a
                // spot interruption; whichever strikes first wins the
                // scheduled slot, and we remember the cause for the
                // recovery rollup.
                let fail_at = ready_at + SimDuration::from_secs_f64(hours * 3600.0);
                if self
                    .preempt_at
                    .get(&id)
                    .map_or(true, |&spot| fail_at < spot)
                {
                    self.preempt_at.insert(id, fail_at);
                    self.hw_origin.insert(id);
                }
            }
            // A zone outage reclaims every instance alive in the zone
            // at (or provisioned into) the outage window — the
            // correlated counterpart of the independent failures
            // above. Deterministic: no draw, earliest reclaim wins.
            if let Some(kill_at) = self
                .faults
                .as_ref()
                .and_then(|inj| inj.zone_kill_at(zone, ready_at))
            {
                if self
                    .preempt_at
                    .get(&id)
                    .map_or(true, |&other| kill_at < other)
                {
                    self.preempt_at.insert(id, kill_at);
                    self.hw_origin.remove(&id);
                    self.zone_origin.insert(id);
                }
            }
            out.push((id, ready_at));
        }
        if self.recorder.enabled() {
            for &(id, ready_at) in &out {
                self.recorder.instant(
                    now,
                    "cloud",
                    "provision",
                    Lane::Cloud,
                    vec![
                        ("instance", id.raw().into()),
                        ("ready_ms", ready_at.as_millis().into()),
                    ],
                );
            }
            self.recorder
                .counter_add("cloud", "provisioned", out.len() as u64);
        }
        Ok(out)
    }

    /// Adopts a warm instance handed over from a shared pool: it enters
    /// the fleet already `Running` at `now` — no provisioning delay, no
    /// initialization, billing from `now`. The donor paid (and stopped)
    /// its own bill; adoption opens a fresh lifetime on this meter.
    ///
    /// Adoption consumes **zero** draws from the provider's main RNG
    /// stream: delays are skipped entirely and the spot-interruption
    /// instant (when the market is pre-emptible) comes from the same
    /// per-instance forked stream `provision` uses. A run that never
    /// adopts is therefore bit-identical to one on a provider that has
    /// no such method. Fault injection and quota do not apply: the
    /// capacity already exists — it is being transferred, not requested.
    pub fn adopt_running(&mut self, now: SimTime) -> InstanceId {
        let id = self.ids.next();
        self.fleet.insert(id, InstanceState::Running { since: now });
        self.zones.insert(id, self.home_zone);
        self.meter.instance_started(id, now);
        if self.config.interruption_rate_per_hour > 0.0 {
            let mut irng = Prng::for_stream(self.interrupt_seed, id.raw());
            let hours = Distribution::Exponential {
                rate: self.config.interruption_rate_per_hour,
            }
            .sample(&mut irng);
            self.preempt_at
                .insert(id, now + SimDuration::from_secs_f64(hours * 3600.0));
        }
        if self.recorder.enabled() {
            self.recorder.instant(
                now,
                "cloud",
                "instance.adopt",
                Lane::Cloud,
                vec![("instance", id.raw().into())],
            );
            self.recorder.counter_add("cloud", "adopted", 1);
        }
        id
    }

    /// Transitions every pending instance whose ready time has arrived to
    /// `Running` and starts its billing. Returns the newly ready ids.
    pub fn poll_ready(&mut self, now: SimTime) -> Vec<InstanceId> {
        let mut ready = Vec::new();
        for (&id, state) in self.fleet.iter_mut() {
            if let InstanceState::Pending { ready_at } = *state {
                if ready_at <= now {
                    *state = InstanceState::Running { since: ready_at };
                    self.meter.instance_started(id, ready_at);
                    if self.recorder.enabled() {
                        self.recorder.instant(
                            ready_at,
                            "cloud",
                            "instance.running",
                            Lane::Cloud,
                            vec![("instance", id.raw().into())],
                        );
                    }
                    ready.push(id);
                }
            }
        }
        ready
    }

    /// Terminates a running instance at `now`, stopping its billing —
    /// or **cancels** a still-pending one. Cancelling an in-flight
    /// provisioning request is free: billing only ever starts at
    /// hand-over, so an instance that never reached `Running` never
    /// touches the meter. This is what lets a retry loop abandon a
    /// stuck (straggling) request without paying for it.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Provider`] if the instance is unknown or
    /// already terminated.
    pub fn terminate(&mut self, id: InstanceId, now: SimTime) -> Result<()> {
        match self.fleet.get_mut(&id) {
            Some(state @ InstanceState::Running { .. }) => {
                *state = InstanceState::Terminated { at: now };
                self.meter.instance_stopped(id, now)?;
                self.preempt_at.remove(&id);
                self.hw_origin.remove(&id);
                self.zone_origin.remove(&id);
                if self.recorder.enabled() {
                    self.recorder.instant(
                        now,
                        "cloud",
                        "instance.terminate",
                        Lane::Cloud,
                        vec![("instance", id.raw().into())],
                    );
                    self.recorder.counter_add("cloud", "terminated", 1);
                }
                Ok(())
            }
            Some(state @ InstanceState::Pending { .. }) => {
                *state = InstanceState::Terminated { at: now };
                self.preempt_at.remove(&id);
                self.hw_origin.remove(&id);
                self.zone_origin.remove(&id);
                if self.recorder.enabled() {
                    self.recorder.instant(
                        now,
                        "cloud",
                        "instance.cancel",
                        Lane::Cloud,
                        vec![("instance", id.raw().into())],
                    );
                    self.recorder.counter_add("cloud", "cancelled", 1);
                }
                Ok(())
            }
            Some(InstanceState::Terminated { .. }) => Err(RbError::Provider(format!(
                "cannot terminate {id}: already terminated"
            ))),
            None => Err(RbError::Provider(format!("unknown instance {id}"))),
        }
    }

    /// Terminates every running instance at `now` (end-of-job cleanup).
    pub fn terminate_all(&mut self, now: SimTime) {
        let running: Vec<InstanceId> = self
            .fleet
            .iter()
            .filter(|(_, s)| matches!(s, InstanceState::Running { .. }))
            .map(|(&id, _)| id)
            .collect();
        for id in running {
            self.terminate(id, now)
                .expect("running instance must terminate cleanly");
        }
    }

    /// The instant at which the spot market will reclaim `id`, if it is
    /// pre-emptible. Known to the simulation (not to a real tenant!) so
    /// the executor can replay interruptions deterministically.
    pub fn preemption_time(&self, id: InstanceId) -> Option<SimTime> {
        self.preempt_at.get(&id).copied()
    }

    /// Reclaims a running spot instance at its sampled interruption time.
    /// Billing stops at the interruption (interrupted partial periods are
    /// not charged beyond it, as on EC2 spot).
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Provider`] if the instance is not running or
    /// has no pending interruption.
    pub fn preempt(&mut self, id: InstanceId) -> Result<SimTime> {
        let at = self
            .preempt_at
            .get(&id)
            .copied()
            .ok_or_else(|| RbError::Provider(format!("{id} has no scheduled interruption")))?;
        match self.fleet.get_mut(&id) {
            Some(state @ InstanceState::Running { .. }) => {
                *state = InstanceState::Terminated { at };
                self.meter.instance_stopped(id, at)?;
                self.preempt_at.remove(&id);
                let hw = self.hw_origin.remove(&id);
                let zone_kill = self.zone_origin.remove(&id);
                if hw {
                    if let Some(inj) = self.faults.as_mut() {
                        inj.note_hw_failure();
                    }
                }
                if zone_kill {
                    if let Some(inj) = self.faults.as_mut() {
                        inj.note_zone_kill();
                    }
                }
                if self.recorder.enabled() {
                    self.recorder.instant(
                        at,
                        "cloud",
                        if zone_kill {
                            "fault.zone_outage"
                        } else if hw {
                            "fault.hw_failure"
                        } else {
                            "instance.preempt"
                        },
                        Lane::Cloud,
                        vec![("instance", id.raw().into())],
                    );
                    self.recorder.counter_add(
                        "cloud",
                        if zone_kill {
                            "zone_outage_killed"
                        } else if hw {
                            "hw_failed"
                        } else {
                            "preempted"
                        },
                        1,
                    );
                }
                Ok(at)
            }
            other => Err(RbError::Provider(format!(
                "cannot preempt {id}: state {other:?}"
            ))),
        }
    }

    /// Returns the state of an instance, if known.
    pub fn state(&self, id: InstanceId) -> Option<InstanceState> {
        self.fleet.get(&id).copied()
    }

    /// Number of instances currently running.
    pub fn running_count(&self) -> usize {
        self.fleet
            .values()
            .filter(|s| matches!(s, InstanceState::Running { .. }))
            .count()
    }

    /// Number of instances pending or running.
    pub fn live_count(&self) -> usize {
        self.fleet
            .values()
            .filter(|s| !matches!(s, InstanceState::Terminated { .. }))
            .count()
    }

    /// Ids of all currently running instances, in creation order.
    pub fn running_ids(&self) -> Vec<InstanceId> {
        self.fleet
            .iter()
            .filter(|(_, s)| matches!(s, InstanceState::Running { .. }))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Read access to the billing meter.
    pub fn meter(&self) -> &BillingMeter {
        &self.meter
    }

    /// Mutable access to the billing meter (for recording usage and ingress
    /// events that the provider itself does not observe).
    pub fn meter_mut(&mut self) -> &mut BillingMeter {
        &mut self.meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::P3_8XLARGE;
    use crate::pricing::CloudPricing;

    fn provider(delay_secs: u64) -> SimProvider {
        SimProvider::new(
            ProviderConfig::with_constant_delay(
                P3_8XLARGE.clone(),
                SimDuration::from_secs(delay_secs),
            ),
            1,
        )
    }

    #[test]
    fn provision_then_poll_transitions_to_running() {
        let mut p = provider(30);
        let handles = p.provision(3, SimTime::ZERO).unwrap();
        assert_eq!(handles.len(), 3);
        for (_, ready) in &handles {
            assert_eq!(*ready, SimTime::from_secs(30));
        }
        assert!(p.poll_ready(SimTime::from_secs(29)).is_empty());
        assert_eq!(p.running_count(), 0);
        let ready = p.poll_ready(SimTime::from_secs(30));
        assert_eq!(ready.len(), 3);
        assert_eq!(p.running_count(), 3);
    }

    #[test]
    fn billing_starts_at_ready_not_request() {
        let mut p = provider(60);
        let (id, ready_at) = p.provision(1, SimTime::ZERO).unwrap()[0];
        p.poll_ready(ready_at);
        p.terminate(id, ready_at + SimDuration::from_hours(1))
            .unwrap();
        let bill = p.meter().compute_cost(
            &CloudPricing::on_demand(P3_8XLARGE),
            ready_at + SimDuration::from_hours(1),
        );
        // Exactly one hour billed despite the 60 s queue delay.
        assert_eq!(bill, P3_8XLARGE.on_demand_hourly);
    }

    #[test]
    fn terminate_pending_cancels_without_billing() {
        let mut p = provider(30);
        let (id, _) = p.provision(1, SimTime::ZERO).unwrap()[0];
        // Cancelling an in-flight request succeeds...
        p.terminate(id, SimTime::from_secs(1)).unwrap();
        assert!(matches!(
            p.state(id),
            Some(InstanceState::Terminated { at }) if at == SimTime::from_secs(1)
        ));
        // ...the instance never becomes ready...
        assert!(p.poll_ready(SimTime::from_secs(30)).is_empty());
        assert_eq!(p.running_count(), 0);
        // ...billing never started (nothing to charge, ever)...
        assert_eq!(p.meter().instances_started(), 0);
        let bill = p.meter().compute_cost(
            &CloudPricing::on_demand(P3_8XLARGE),
            SimTime::from_secs(7200),
        );
        assert_eq!(bill, rb_core::Cost::ZERO);
        // ...and the quota slot is freed.
        assert_eq!(p.live_count(), 0);
    }

    #[test]
    fn cancel_clears_scheduled_interruption() {
        let mut cfg =
            ProviderConfig::with_constant_delay(P3_8XLARGE.clone(), SimDuration::from_secs(60));
        cfg.interruption_rate_per_hour = 1.0;
        let mut p = SimProvider::new(cfg, 5);
        let (id, _) = p.provision(1, SimTime::ZERO).unwrap()[0];
        assert!(p.preemption_time(id).is_some());
        p.terminate(id, SimTime::from_secs(10)).unwrap();
        assert_eq!(p.preemption_time(id), None);
        assert!(p.preempt(id).is_err());
    }

    #[test]
    fn double_terminate_is_an_error() {
        let mut p = provider(0);
        let (id, ready) = p.provision(1, SimTime::ZERO).unwrap()[0];
        p.poll_ready(ready);
        p.terminate(id, SimTime::from_secs(100)).unwrap();
        assert!(p.terminate(id, SimTime::from_secs(200)).is_err());
    }

    #[test]
    fn unknown_instance_is_an_error() {
        let mut p = provider(0);
        assert!(p.terminate(InstanceId::new(99), SimTime::ZERO).is_err());
    }

    #[test]
    fn quota_is_enforced() {
        let mut cfg =
            ProviderConfig::with_constant_delay(P3_8XLARGE.clone(), SimDuration::from_secs(1));
        cfg.quota = Some(2);
        let mut p = SimProvider::new(cfg, 1);
        p.provision(2, SimTime::ZERO).unwrap();
        assert!(p.provision(1, SimTime::ZERO).is_err());
        // Terminating frees quota.
        let ready = p.poll_ready(SimTime::from_secs(1));
        p.terminate(ready[0], SimTime::from_secs(61)).unwrap();
        assert!(p.provision(1, SimTime::from_secs(61)).is_ok());
    }

    #[test]
    fn terminate_all_stops_every_running_instance() {
        let mut p = provider(0);
        p.provision(4, SimTime::ZERO).unwrap();
        p.poll_ready(SimTime::ZERO);
        p.terminate_all(SimTime::from_secs(120));
        assert_eq!(p.running_count(), 0);
        assert_eq!(p.live_count(), 0);
    }

    #[test]
    fn stochastic_delays_are_deterministic_per_seed() {
        let mk = || {
            let cfg = ProviderConfig {
                instance_type: P3_8XLARGE.clone(),
                provision_delay_secs: Distribution::lognormal_from_moments(20.0, 10.0),
                quota: None,
                interruption_rate_per_hour: 0.0,
            };
            SimProvider::new(cfg, 42)
        };
        let mut a = mk();
        let mut b = mk();
        let ra = a.provision(5, SimTime::ZERO).unwrap();
        let rb = b.provision(5, SimTime::ZERO).unwrap();
        assert_eq!(ra, rb);
        // And the delays actually vary across instances.
        let distinct: std::collections::BTreeSet<_> = ra.iter().map(|(_, t)| *t).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn spot_interruptions_are_sampled_and_preemptable() {
        let mut cfg =
            ProviderConfig::with_constant_delay(P3_8XLARGE.clone(), SimDuration::from_secs(0));
        cfg.interruption_rate_per_hour = 2.0;
        let mut p = SimProvider::new(cfg, 9);
        let handles = p.provision(4, SimTime::ZERO).unwrap();
        p.poll_ready(SimTime::ZERO);
        for (id, ready) in &handles {
            let t = p.preemption_time(*id).expect("spot instances get a draw");
            assert!(t >= *ready);
        }
        // Preempting stops billing at the sampled instant.
        let (victim, _) = handles[0];
        let at = p.preempt(victim).unwrap();
        assert_eq!(p.preemption_time(victim), None);
        assert!(matches!(
            p.state(victim),
            Some(InstanceState::Terminated { at: t }) if t == at
        ));
        // Double preemption fails.
        assert!(p.preempt(victim).is_err());
    }

    #[test]
    fn interruption_draws_are_independent_of_provisioning_cadence() {
        let mk = || {
            let mut cfg = ProviderConfig {
                instance_type: P3_8XLARGE.clone(),
                provision_delay_secs: Distribution::Constant(5.0),
                quota: None,
                interruption_rate_per_hour: 1.5,
            };
            cfg.quota = None;
            SimProvider::new(cfg, 77)
        };
        // One batch of 6 versus the same 6 provisioned across three
        // requests at different times: identical instance indices must
        // get identical interruption *offsets* past their ready times.
        let mut a = mk();
        let ha = a.provision(6, SimTime::ZERO).unwrap();
        let mut b = mk();
        let mut hb = b.provision(2, SimTime::ZERO).unwrap();
        hb.extend(b.provision(3, SimTime::from_secs(100)).unwrap());
        hb.extend(b.provision(1, SimTime::from_secs(900)).unwrap());
        for ((ia, ra), (ib, rb)) in ha.iter().zip(hb.iter()) {
            assert_eq!(ia, ib);
            let offset_a = a.preemption_time(*ia).unwrap() - *ra;
            let offset_b = b.preemption_time(*ib).unwrap() - *rb;
            assert_eq!(offset_a, offset_b, "instance {ia} offset diverged");
        }
        // And the offsets vary across instances (distinct streams).
        let distinct: std::collections::BTreeSet<_> = ha
            .iter()
            .map(|(id, r)| a.preemption_time(*id).unwrap() - *r)
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn on_demand_instances_are_never_preempted() {
        let mut p = provider(0);
        let (id, _) = p.provision(1, SimTime::ZERO).unwrap()[0];
        p.poll_ready(SimTime::ZERO);
        assert_eq!(p.preemption_time(id), None);
        assert!(p.preempt(id).is_err());
    }

    #[test]
    fn terminate_clears_pending_interruption() {
        let mut cfg =
            ProviderConfig::with_constant_delay(P3_8XLARGE.clone(), SimDuration::from_secs(0));
        cfg.interruption_rate_per_hour = 1.0;
        let mut p = SimProvider::new(cfg, 3);
        let (id, _) = p.provision(1, SimTime::ZERO).unwrap()[0];
        p.poll_ready(SimTime::ZERO);
        p.terminate(id, SimTime::from_secs(120)).unwrap();
        assert_eq!(p.preemption_time(id), None);
    }

    #[test]
    fn running_ids_in_creation_order() {
        let mut p = provider(0);
        let handles = p.provision(3, SimTime::ZERO).unwrap();
        p.poll_ready(SimTime::ZERO);
        assert_eq!(
            p.running_ids(),
            handles.iter().map(|(id, _)| *id).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "invalid provider config")]
    fn constructor_rejects_malformed_delay_distribution() {
        let cfg = ProviderConfig {
            instance_type: P3_8XLARGE.clone(),
            provision_delay_secs: Distribution::Constant(-5.0),
            quota: None,
            interruption_rate_per_hour: 0.0,
        };
        let _ = SimProvider::new(cfg, 1);
    }

    #[test]
    #[should_panic(expected = "invalid provider config")]
    fn constructor_rejects_nan_interruption_rate() {
        let cfg = ProviderConfig {
            instance_type: P3_8XLARGE.clone(),
            provision_delay_secs: Distribution::Constant(1.0),
            quota: None,
            interruption_rate_per_hour: f64::NAN,
        };
        let _ = SimProvider::new(cfg, 1);
    }

    #[test]
    fn capacity_faults_deny_provisioning_with_a_retryable_error() {
        let mut p = provider(10);
        p.set_fault_plan(
            FaultPlan {
                capacity_failure_prob: 1.0,
                ..FaultPlan::none()
            },
            7,
        );
        let err = p.provision(2, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, RbError::Capacity(_)), "{err:?}");
        assert_eq!(p.fault_counts().capacity_failures, 1);
        assert_eq!(p.live_count(), 0, "a denied request provisions nothing");
    }

    #[test]
    fn stragglers_inflate_handover_and_degraded_nodes_report_slowdown() {
        let mut p = provider(30);
        p.set_fault_plan(
            FaultPlan {
                straggler_prob: 1.0,
                straggler_factor: 10.0,
                degraded_prob: 1.0,
                degraded_factor: 2.5,
                ..FaultPlan::none()
            },
            7,
        );
        let (id, ready) = p.provision(1, SimTime::ZERO).unwrap()[0];
        assert_eq!(ready, SimTime::from_secs(300), "30 s delay x 10");
        assert_eq!(p.node_slowdown(id), 2.5);
        let c = p.fault_counts();
        assert_eq!((c.stragglers, c.degraded_nodes), (1, 1));
        // Healthy instances on the same provider report no slowdown.
        assert_eq!(p.node_slowdown(InstanceId::new(999)), 1.0);
    }

    #[test]
    fn hw_failures_reclaim_on_demand_instances_like_preemptions() {
        let mut p = provider(0);
        p.set_fault_plan(
            FaultPlan {
                hw_failure_rate_per_hour: 4.0,
                ..FaultPlan::none()
            },
            11,
        );
        let (id, ready) = p.provision(1, SimTime::ZERO).unwrap()[0];
        p.poll_ready(ready);
        let at = p
            .preemption_time(id)
            .expect("hw failure schedules a reclaim even with no spot market");
        assert!(at >= ready);
        assert_eq!(p.preempt(id).unwrap(), at);
        assert_eq!(p.fault_counts().hw_failures, 1);
        assert!(matches!(
            p.state(id),
            Some(InstanceState::Terminated { .. })
        ));
    }

    fn two_zone_outage_plan() -> FaultPlan {
        use crate::chaos::{ZonePlan, ZoneWindow};
        FaultPlan {
            zones: ZonePlan {
                zones: 2,
                outage: Some(ZoneWindow {
                    zone: 0,
                    start_secs: 100.0,
                    duration_secs: 300.0,
                }),
                ..ZonePlan::none()
            },
            ..FaultPlan::none()
        }
    }

    #[test]
    fn zone_outage_denies_new_capacity_and_kills_survivors_in_zone() {
        let mut p = provider(0);
        p.set_fault_plan(two_zone_outage_plan(), 13);
        assert_eq!(p.num_zones(), 2);
        // Provisioned before the outage, but the zone goes dark at
        // t=100 s: a reclaim is scheduled at the outage start.
        let (id, ready) = p.provision(1, SimTime::ZERO).unwrap()[0];
        p.poll_ready(ready);
        assert_eq!(p.instance_zone(id), 0);
        assert_eq!(p.preemption_time(id), Some(SimTime::from_secs(100)));
        // During the window the zone denies all new capacity...
        let err = p.provision(1, SimTime::from_secs(150)).unwrap_err();
        assert!(matches!(err, RbError::Capacity(_)), "{err:?}");
        // ...while the other zone still serves.
        p.set_home_zone(1);
        let (id2, _) = p.provision(1, SimTime::from_secs(150)).unwrap()[0];
        assert_eq!(p.instance_zone(id2), 1);
        assert_eq!(p.preemption_time(id2), None);
        // The scheduled kill is attributed to the outage.
        assert_eq!(p.preempt(id).unwrap(), SimTime::from_secs(100));
        let c = p.fault_counts();
        assert_eq!((c.zone_denials, c.zone_outage_kills), (1, 1));
        // After the window the zone accepts requests again.
        p.set_home_zone(0);
        assert!(p.provision(1, SimTime::from_secs(400)).is_ok());
    }

    #[test]
    fn zone_brownout_inflates_handover_inside_the_window_only() {
        use crate::chaos::{ZonePlan, ZoneWindow};
        let mut p = provider(30);
        p.set_fault_plan(
            FaultPlan {
                zones: ZonePlan {
                    zones: 2,
                    brownout: Some(ZoneWindow {
                        zone: 0,
                        start_secs: 100.0,
                        duration_secs: 200.0,
                    }),
                    brownout_delay_factor: 5.0,
                    ..ZonePlan::none()
                },
                ..FaultPlan::none()
            },
            13,
        );
        // Inside the window: 30 s hand-over becomes 150 s.
        let (_, ready) = p.provision(1, SimTime::from_secs(100)).unwrap()[0];
        assert_eq!(ready, SimTime::from_secs(250));
        // Outside the window (and in the other zone) it is untouched.
        let (_, ready) = p.provision(1, SimTime::from_secs(400)).unwrap()[0];
        assert_eq!(ready, SimTime::from_secs(430));
        p.set_home_zone(1);
        let (_, ready) = p.provision(1, SimTime::from_secs(100)).unwrap()[0];
        assert_eq!(ready, SimTime::from_secs(130));
    }

    #[test]
    fn set_home_zone_wraps_into_declared_zone_count() {
        let mut p = provider(0);
        // Without an injector there is a single zone.
        p.set_home_zone(3);
        assert_eq!(p.home_zone(), 0);
        p.set_fault_plan(two_zone_outage_plan(), 13);
        p.set_home_zone(3);
        assert_eq!(p.home_zone(), 1);
    }

    #[test]
    fn windowless_zone_plan_is_bit_identical_to_zoneless_plan() {
        use crate::chaos::ZonePlan;
        // An armed injector whose zone plan declares zones but no
        // windows must draw exactly what the zoneless plan draws.
        let mk = |zoned: bool| {
            let cfg = ProviderConfig {
                instance_type: P3_8XLARGE.clone(),
                provision_delay_secs: Distribution::lognormal_from_moments(20.0, 10.0),
                quota: None,
                interruption_rate_per_hour: 1.5,
            };
            let mut p = SimProvider::new(cfg, 42);
            let mut plan = FaultPlan {
                straggler_prob: 0.5,
                straggler_factor: 4.0,
                ..FaultPlan::none()
            };
            if zoned {
                plan.zones = ZonePlan {
                    zones: 4,
                    ..ZonePlan::none()
                };
            }
            p.set_fault_plan(plan, 42);
            p
        };
        let mut plain = mk(false);
        let mut zoned = mk(true);
        assert_eq!(zoned.num_zones(), 4);
        let ha = plain.provision(6, SimTime::ZERO).unwrap();
        let hb = zoned.provision(6, SimTime::ZERO).unwrap();
        assert_eq!(ha, hb);
        for (id, _) in &ha {
            assert_eq!(plain.preemption_time(*id), zoned.preemption_time(*id));
        }
        assert_eq!(plain.fault_counts(), zoned.fault_counts());
    }

    #[test]
    fn inactive_fault_plan_is_bit_identical_to_no_plan() {
        let mk = |armed: bool| {
            let cfg = ProviderConfig {
                instance_type: P3_8XLARGE.clone(),
                provision_delay_secs: Distribution::lognormal_from_moments(20.0, 10.0),
                quota: None,
                interruption_rate_per_hour: 1.5,
            };
            let mut p = SimProvider::new(cfg, 42);
            if armed {
                p.set_fault_plan(FaultPlan::none(), 42);
            }
            p
        };
        let mut plain = mk(false);
        let mut disarmed = mk(true);
        assert!(!disarmed.faults_active());
        let ha = plain.provision(5, SimTime::ZERO).unwrap();
        let hb = disarmed.provision(5, SimTime::ZERO).unwrap();
        assert_eq!(ha, hb);
        for (id, _) in &ha {
            assert_eq!(plain.preemption_time(*id), disarmed.preemption_time(*id));
        }
        assert_eq!(disarmed.fault_counts(), FaultCounts::default());
    }
}
