//! Placement plans: trial → physical GPU assignments.

use rb_core::{NodeId, TrialId};
use rb_scaling::PlacementQuality;
use std::collections::BTreeMap;

/// One chunk of a trial's placement: `gpus` GPUs on `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The machine hosting the chunk.
    pub node: NodeId,
    /// GPUs of that machine assigned to the trial.
    pub gpus: u32,
}

/// The homogeneous cluster the controller places onto (§4.4.1 assumes all
/// worker instances have the same number and type of GPUs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterState {
    nodes: Vec<NodeId>,
    gpus_per_node: u32,
}

impl ClusterState {
    /// Creates a cluster of the given nodes, each with `gpus_per_node`
    /// GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `gpus_per_node` is zero.
    pub fn new(nodes: Vec<NodeId>, gpus_per_node: u32) -> Self {
        assert!(gpus_per_node > 0, "nodes must have GPUs");
        ClusterState {
            nodes,
            gpus_per_node,
        }
    }

    /// A cluster of `n` fresh nodes numbered 0..n.
    pub fn with_n_nodes(n: u32, gpus_per_node: u32) -> Self {
        ClusterState::new((0..u64::from(n)).map(NodeId::new).collect(), gpus_per_node)
    }

    /// The node ids, in stable order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// GPUs per node.
    pub fn gpus_per_node(&self) -> u32 {
        self.gpus_per_node
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.nodes.len() as u32 * self.gpus_per_node
    }

    /// True if `node` belongs to the cluster.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Removes a node (after deprovisioning).
    pub fn remove(&mut self, node: NodeId) {
        self.nodes.retain(|&n| n != node);
    }

    /// Adds a node (after provisioning).
    pub fn add(&mut self, node: NodeId) {
        debug_assert!(!self.contains(node), "node {node} added twice");
        self.nodes.push(node);
    }
}

/// The full mapping of trials to physical assignments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementPlan {
    assignments: BTreeMap<TrialId, Vec<Placement>>,
}

impl PlacementPlan {
    /// An empty plan.
    pub fn new() -> Self {
        PlacementPlan::default()
    }

    /// The placement chunks of `trial`, if placed.
    pub fn get(&self, trial: TrialId) -> Option<&[Placement]> {
        self.assignments.get(&trial).map(Vec::as_slice)
    }

    /// Total GPUs assigned to `trial`.
    pub fn assigned_gpus(&self, trial: TrialId) -> u32 {
        self.get(trial)
            .map(|ps| ps.iter().map(|p| p.gpus).sum())
            .unwrap_or(0)
    }

    /// Inserts or replaces a trial's assignment.
    pub fn assign(&mut self, trial: TrialId, chunks: Vec<Placement>) {
        debug_assert!(!chunks.is_empty(), "empty assignment for {trial}");
        self.assignments.insert(trial, chunks);
    }

    /// Removes a trial's assignment, returning it if present.
    pub fn remove(&mut self, trial: TrialId) -> Option<Vec<Placement>> {
        self.assignments.remove(&trial)
    }

    /// Iterates over `(trial, chunks)` in trial order.
    pub fn iter(&self) -> impl Iterator<Item = (TrialId, &[Placement])> {
        self.assignments.iter().map(|(&t, v)| (t, v.as_slice()))
    }

    /// Trials currently placed.
    pub fn trials(&self) -> Vec<TrialId> {
        self.assignments.keys().copied().collect()
    }

    /// Number of placed trials.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// GPUs used per node under this plan.
    pub fn used_per_node(&self) -> BTreeMap<NodeId, u32> {
        let mut used = BTreeMap::new();
        for chunks in self.assignments.values() {
            for p in chunks {
                *used.entry(p.node).or_insert(0) += p.gpus;
            }
        }
        used
    }

    /// Free GPUs per node of `cluster` (nodes with no assignment included).
    pub fn free_per_node(&self, cluster: &ClusterState) -> BTreeMap<NodeId, u32> {
        let used = self.used_per_node();
        cluster
            .nodes()
            .iter()
            .map(|&n| {
                let u = used.get(&n).copied().unwrap_or(0);
                (n, cluster.gpus_per_node().saturating_sub(u))
            })
            .collect()
    }

    /// True when no node is over-subscribed and every chunk sits on a
    /// cluster node.
    pub fn is_valid_for(&self, cluster: &ClusterState) -> bool {
        let used = self.used_per_node();
        used.iter()
            .all(|(&n, &u)| cluster.contains(n) && u <= cluster.gpus_per_node())
    }

    /// The placement quality of a trial as seen by the communication model
    /// (§2.1): packed when it occupies the minimal feasible number of
    /// nodes, scattered otherwise.
    pub fn quality(&self, trial: TrialId, gpus_per_node: u32) -> Option<PlacementQuality> {
        let chunks = self.get(trial)?;
        let total: u32 = chunks.iter().map(|p| p.gpus).sum();
        let minimal = total.div_ceil(gpus_per_node.max(1)) as usize;
        Some(if chunks.len() <= minimal {
            PlacementQuality::Packed
        } else {
            PlacementQuality::Scattered
        })
    }
}

/// The placement-unaware baseline of Table 1: spread each trial's workers
/// round-robin across all nodes, one GPU at a time, with no locality
/// preference ("RubberBand delegates placement of workers to the
/// underlying scheduler without indicating location preferences").
///
/// Returns `None` when the cluster lacks capacity.
pub fn scatter_placement(
    allocations: &BTreeMap<TrialId, u32>,
    cluster: &ClusterState,
) -> Option<PlacementPlan> {
    let total: u32 = allocations.values().sum();
    if total > cluster.total_gpus() {
        return None;
    }
    let mut free: Vec<(NodeId, u32)> = cluster
        .nodes()
        .iter()
        .map(|&n| (n, cluster.gpus_per_node()))
        .collect();
    let mut plan = PlacementPlan::new();
    let mut cursor = 0usize;
    for (&trial, &gpus) in allocations {
        let mut chunks: BTreeMap<NodeId, u32> = BTreeMap::new();
        let mut remaining = gpus;
        while remaining > 0 {
            // Round-robin over nodes with any free GPU.
            let mut hops = 0;
            while free[cursor % free.len()].1 == 0 {
                cursor += 1;
                hops += 1;
                if hops > free.len() {
                    return None;
                }
            }
            let slot = cursor % free.len();
            free[slot].1 -= 1;
            *chunks.entry(free[slot].0).or_insert(0) += 1;
            remaining -= 1;
            cursor += 1;
        }
        plan.assign(
            trial,
            chunks
                .into_iter()
                .map(|(node, gpus)| Placement { node, gpus })
                .collect(),
        );
    }
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_accounting() {
        let mut c = ClusterState::with_n_nodes(3, 4);
        assert_eq!(c.total_gpus(), 12);
        assert!(c.contains(NodeId::new(1)));
        c.remove(NodeId::new(1));
        assert!(!c.contains(NodeId::new(1)));
        assert_eq!(c.total_gpus(), 8);
        c.add(NodeId::new(7));
        assert!(c.contains(NodeId::new(7)));
    }

    #[test]
    fn plan_usage_and_validity() {
        let cluster = ClusterState::with_n_nodes(2, 4);
        let mut plan = PlacementPlan::new();
        plan.assign(
            TrialId::new(0),
            vec![Placement {
                node: NodeId::new(0),
                gpus: 3,
            }],
        );
        plan.assign(
            TrialId::new(1),
            vec![Placement {
                node: NodeId::new(0),
                gpus: 1,
            }],
        );
        assert!(plan.is_valid_for(&cluster));
        assert_eq!(plan.assigned_gpus(TrialId::new(0)), 3);
        assert_eq!(plan.free_per_node(&cluster)[&NodeId::new(0)], 0);
        assert_eq!(plan.free_per_node(&cluster)[&NodeId::new(1)], 4);
        // Oversubscribe node 0.
        plan.assign(
            TrialId::new(2),
            vec![Placement {
                node: NodeId::new(0),
                gpus: 1,
            }],
        );
        assert!(!plan.is_valid_for(&cluster));
    }

    #[test]
    fn quality_detects_scatter() {
        let mut plan = PlacementPlan::new();
        // 2 GPUs on one 4-GPU node: packed.
        plan.assign(
            TrialId::new(0),
            vec![Placement {
                node: NodeId::new(0),
                gpus: 2,
            }],
        );
        // 2 GPUs split across two nodes: scattered.
        plan.assign(
            TrialId::new(1),
            vec![
                Placement {
                    node: NodeId::new(1),
                    gpus: 1,
                },
                Placement {
                    node: NodeId::new(2),
                    gpus: 1,
                },
            ],
        );
        // 8 GPUs over two 4-GPU nodes: minimal, packed.
        plan.assign(
            TrialId::new(2),
            vec![
                Placement {
                    node: NodeId::new(3),
                    gpus: 4,
                },
                Placement {
                    node: NodeId::new(4),
                    gpus: 4,
                },
            ],
        );
        assert_eq!(
            plan.quality(TrialId::new(0), 4),
            Some(PlacementQuality::Packed)
        );
        assert_eq!(
            plan.quality(TrialId::new(1), 4),
            Some(PlacementQuality::Scattered)
        );
        assert_eq!(
            plan.quality(TrialId::new(2), 4),
            Some(PlacementQuality::Packed)
        );
        assert_eq!(plan.quality(TrialId::new(9), 4), None);
    }

    #[test]
    fn scatter_baseline_spreads_workers() {
        let cluster = ClusterState::with_n_nodes(4, 8);
        let mut alloc = BTreeMap::new();
        alloc.insert(TrialId::new(0), 4u32);
        let plan = scatter_placement(&alloc, &cluster).unwrap();
        // 4 GPUs round-robin over 4 nodes → 4 chunks of 1.
        assert_eq!(plan.get(TrialId::new(0)).unwrap().len(), 4);
        assert_eq!(
            plan.quality(TrialId::new(0), 8),
            Some(PlacementQuality::Scattered)
        );
    }

    #[test]
    fn scatter_respects_capacity() {
        let cluster = ClusterState::with_n_nodes(2, 2);
        let mut alloc = BTreeMap::new();
        alloc.insert(TrialId::new(0), 2u32);
        alloc.insert(TrialId::new(1), 1u32);
        let plan = scatter_placement(&alloc, &cluster).unwrap();
        assert!(plan.is_valid_for(&cluster));
        assert_eq!(plan.assigned_gpus(TrialId::new(0)), 2);
        // Exactly full still works; over capacity → None.
        alloc.insert(TrialId::new(2), 1u32);
        assert!(scatter_placement(&alloc, &cluster).is_some());
        alloc.insert(TrialId::new(3), 1u32);
        assert!(scatter_placement(&alloc, &cluster).is_none());
    }
}
