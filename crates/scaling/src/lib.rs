//! Data-parallel training performance models.
//!
//! RubberBand's planner needs one thing from the training system: *iteration
//! latency as a function of the number of GPUs allocated* (§2.1, §4.1). The
//! paper measures this empirically with a profiling step; this crate
//! provides both the "ground truth" the profiler measures — an analytic,
//! communication-aware model ([`analytic::AnalyticScaling`]) calibrated to
//! the sub-linear curves of Fig. 4 — and the fitted representation the
//! profiler produces ([`interp::InterpolatedScaling`]).
//!
//! The analytic model also captures *placement sensitivity*: workers packed
//! onto few machines communicate over NVLink-class links, scattered workers
//! over the network (§2.1, Fig. 5) — the effect ablated in Table 1.

pub mod analytic;
pub mod interp;
pub mod refit;
pub mod rescale;
pub mod zoo;

pub use analytic::AnalyticScaling;
pub use interp::InterpolatedScaling;
pub use refit::{refit_least_squares, LatencyObservation, RefitScaling};
pub use rescale::{IdealScaling, RescaledScaling};
pub use zoo::ModelArch;

use std::sync::Arc;

/// How a trial's workers are spread over machines, as seen by the
/// communication model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementQuality {
    /// Workers are packed onto the minimal feasible set of nodes (the
    /// placement controller's goal). Communication stays on intra-node
    /// links whenever the gang fits on one machine.
    #[default]
    Packed,
    /// Workers are scattered across machines with no locality, so all
    /// gradient traffic crosses the network.
    Scattered,
}

/// Iteration latency as a function of allocated GPUs.
///
/// Implementations must be deterministic: stochastic noise (stragglers,
/// jitter) is layered on top by the execution model, not baked in here.
pub trait ScalingModel: std::fmt::Debug + Send + Sync {
    /// Mean wall-clock seconds for one training iteration (one optimizer
    /// step over the full global batch) on `gpus` GPUs.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `gpus` is zero.
    fn iter_latency_secs(&self, gpus: u32, placement: PlacementQuality) -> f64;

    /// The global batch size the model was configured for.
    fn batch_size(&self) -> u32;

    /// Training throughput in samples per second on `gpus` GPUs.
    fn throughput(&self, gpus: u32, placement: PlacementQuality) -> f64 {
        f64::from(self.batch_size()) / self.iter_latency_secs(gpus, placement)
    }

    /// Throughput normalized to the single-GPU packed baseline — the y-axis
    /// of Fig. 4.
    fn speedup(&self, gpus: u32, placement: PlacementQuality) -> f64 {
        self.throughput(gpus, placement) / self.throughput(1, PlacementQuality::Packed)
    }

    /// Splits one iteration's latency into `(compute_secs, comm_secs)`:
    /// the GPU-bound share (compute, micro-step and fixed overheads) and
    /// the communication-bound share (gradient all-reduce). The parts sum
    /// to [`ScalingModel::iter_latency_secs`].
    ///
    /// Online refitting ([`refit::RefitScaling`]) rescales the two parts
    /// independently, which is what lets a re-planner distinguish uniform
    /// compute slowdown from parallelism-dependent contention. Models
    /// without a communication term (the default) report everything as
    /// compute, so a refit degenerates to a scalar factor.
    fn latency_components(&self, gpus: u32, placement: PlacementQuality) -> (f64, f64) {
        (self.iter_latency_secs(gpus, placement), 0.0)
    }
}

/// Shared, thread-safe handle to a scaling model.
pub type SharedScaling = Arc<dyn ScalingModel>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::RESNET50;

    #[test]
    fn speedup_is_one_at_one_gpu() {
        let m = AnalyticScaling::for_arch(&RESNET50, 512, 4);
        assert!((m.speedup(1, PlacementQuality::Packed) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trait_object_is_usable() {
        let m: SharedScaling = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4));
        assert!(
            m.throughput(2, PlacementQuality::Packed) > m.throughput(1, PlacementQuality::Packed)
        );
    }
}
