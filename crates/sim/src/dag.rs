//! DAG construction (§4.2).
//!
//! The simulator "constructs the DAG by parsing the specification and
//! allocation plan together stage-by-stage, extending dependency edges
//! from the frontier in each step. For each stage, cluster scaling nodes
//! are first added if provisioning new nodes is necessary. This is
//! followed by adding parallel training nodes and a synchronization node
//! to end the stage. … If the cluster is too small to run all trials in
//! parallel, each queued trial is represented by a TRAIN node with a
//! serial dependency on a previously run trial." Low-latency, zero-cost
//! events (deprovisioning) are unrepresented.

use crate::plan::AllocationPlan;
use rb_cloud::CloudPricing;
use rb_core::{Cost, Distribution, Prng, RbError, Result, SimDuration};
use rb_hpo::ExperimentSpec;
use rb_profile::{CloudProfile, ModelProfile};
use rb_scaling::PlacementQuality;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// What a DAG node represents.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Provision `new_instances` instances before `stage` begins.
    Scale {
        /// The stage the scale-up precedes.
        stage: usize,
        /// Instances requested.
        new_instances: u32,
    },
    /// Initialize one freshly provisioned instance before `stage`.
    InitInstance {
        /// The stage the instance joins.
        stage: usize,
    },
    /// Train one trial slot for `units` work units on `gpus` GPUs.
    Train {
        /// Stage index.
        stage: usize,
        /// Slot within the stage (0-based; identifies the trial).
        trial_slot: u32,
        /// Work units executed.
        units: u64,
        /// GPUs allocated to the trial.
        gpus: u32,
    },
    /// The end-of-stage evaluation/termination barrier.
    Sync {
        /// Stage index.
        stage: usize,
    },
}

impl NodeKind {
    /// The stage this node belongs to.
    pub fn stage(&self) -> usize {
        match *self {
            NodeKind::Scale { stage, .. }
            | NodeKind::InitInstance { stage }
            | NodeKind::Train { stage, .. }
            | NodeKind::Sync { stage } => stage,
        }
    }
}

/// A node's latency specification.
#[derive(Debug, Clone, PartialEq)]
pub enum Latency {
    /// One draw from the distribution.
    Dist(Distribution),
    /// The maximum of `n` independent draws — used for SCALE, whose
    /// hand-over completes when the slowest of the requested instances
    /// arrives.
    MaxOf {
        /// Per-instance delay distribution.
        dist: Distribution,
        /// Number of independent draws.
        n: u32,
    },
}

impl Latency {
    /// Samples one latency in seconds.
    pub fn sample(&self, rng: &mut Prng) -> f64 {
        match self {
            Latency::Dist(d) => d.sample(rng).max(0.0),
            Latency::MaxOf { dist, n } => (0..*n).map(|_| dist.sample(rng)).fold(0.0_f64, f64::max),
        }
    }

    /// The latency's mean (upper-bounded approximation for `MaxOf`, which
    /// uses the underlying mean — adequate for reporting only).
    pub fn mean(&self) -> f64 {
        match self {
            Latency::Dist(d) => d.mean(),
            Latency::MaxOf { dist, .. } => dist.mean(),
        }
    }
}

/// One task node: kind, latency, and dependency edges (indices of earlier
/// nodes).
#[derive(Debug, Clone, PartialEq)]
pub struct DagNode {
    /// What the task does.
    pub kind: NodeKind,
    /// Its latency model.
    pub latency: Latency,
    /// Indices of predecessor nodes (always smaller than this node's own
    /// index, so the vector order is a topological order).
    pub preds: Vec<usize>,
}

/// The execution DAG for one (spec, plan) pair, plus the stage-level
/// metadata needed to reconstruct instance lifetimes for billing.
#[derive(Debug, Clone)]
pub struct ExecDag {
    /// Nodes in topological (construction) order.
    pub nodes: Vec<DagNode>,
    /// Index of each stage's SYNC node.
    pub stage_sync: Vec<usize>,
    /// Index of each stage's SCALE node, when the stage grew the cluster.
    pub stage_scale: Vec<Option<usize>>,
    /// Instances held during each stage.
    pub stage_instances: Vec<u32>,
    /// Instances newly provisioned at each stage's start.
    pub stage_new_instances: Vec<u32>,
    /// Total instances provisioned over the job.
    pub total_instances: u32,
}

/// The per-spec half of DAG construction.
///
/// [`ExecDag::build`] does two kinds of work: spec-level work that is the
/// same for every candidate plan (reading the stage ladder, constructing
/// the provider latency distributions, fitting train-task distributions
/// from the scaling model) and plan-level work (wiring nodes and edges for
/// one allocation vector). The planner evaluates hundreds of plans against
/// one spec, and a greedy step changes a single stage's allocation — so
/// the template is built **once per spec** and [`DagTemplate::instantiate`]
/// performs only the cheap per-plan re-parameterization.
///
/// Fitted train-task distributions are memoized per `(stage, gpus)` pair:
/// the scaling-model evaluation behind
/// [`ModelProfile::train_task_dist`] is by far the most expensive part of
/// construction and candidate plans revisit the same few allocations
/// constantly.
#[derive(Debug)]
pub struct DagTemplate {
    /// `(trials, units)` per stage, in order.
    stages: Vec<(u32, u64)>,
    /// GPUs per instance on the target cloud (≥ 1).
    gpg: u32,
    /// Provider queuing-delay distribution (SCALE).
    provision: Distribution,
    /// Instance initialization distribution (INIT).
    init: Distribution,
    /// The end-of-stage barrier latency (SYNC).
    sync: Distribution,
    /// The model profile used to fit train-task distributions on demand.
    model: ModelProfile,
    /// Memoized train-task distributions keyed by `(stage, gpus_per_trial)`.
    train_dists: Mutex<HashMap<(usize, u32), Distribution>>,
    /// Memoized per-stage execution samples keyed by the stage's canonical
    /// sampling configuration `(stage, gpus_per_trial, parallel_slots,
    /// new_instances, seed)` — see [`DagTemplate::stage_samples`].
    stage_memo: Mutex<HashMap<StageMemoKey, Arc<Vec<StageSample>>>>,
    /// Generation cap on `stage_memo`: when an insert would push the memo
    /// past this many entries the whole memo is dropped and re-grown (a
    /// new generation). Entries are pure functions of their key, so
    /// eviction can never change results — only make them slower to
    /// recompute. `0` disables the cap.
    memo_cap: usize,
    /// Hit/miss/eviction tallies for `stage_memo` (passive; see
    /// [`crate::counters::CacheCounters`]).
    counters: crate::counters::CacheCounters,
}

/// Stage-memo key: `(stage, gpus_per_trial, parallel_slots,
/// new_instances, seed)`.
type StageMemoKey = (usize, u32, u32, u32, u64);

/// Default [`DagTemplate`] stage-sample memo capacity, in entries. Sized
/// for planning workloads (a greedy descent touches a few hundred stage
/// configurations); long-running re-planning loops stay bounded.
pub const DEFAULT_STAGE_MEMO_CAP: usize = 4096;

/// One sampled execution of a single stage, relative to the stage's start
/// (the previous stage's barrier). Because every node's randomness is
/// derived from a counter on its `(stage, ordinal)` position
/// ([`ExecDag::sample_schedule_seeded`]), a stage's sample depends only on
/// the stage's own configuration — not on the rest of the plan — so these
/// values can be memoized and shared across every candidate plan that
/// configures the stage the same way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSample {
    /// Wall-clock span of the stage (scale-up through barrier).
    pub dur: f64,
    /// When newly provisioned instances are handed over, relative to the
    /// stage start (0 when the stage provisions nothing).
    pub handover: f64,
    /// The stage's TRAIN tasks billed under per-function pricing.
    pub fn_charge: Cost,
}

impl DagTemplate {
    /// Captures everything about `(spec, model, cloud, sync_overhead)` that
    /// is independent of the allocation plan.
    pub fn new(
        spec: &ExperimentSpec,
        model: &ModelProfile,
        cloud: &CloudProfile,
        sync_overhead_secs: f64,
    ) -> DagTemplate {
        DagTemplate {
            stages: spec.stages().map(|s| (s.num_trials, s.iters)).collect(),
            gpg: cloud.gpus_per_instance().max(1),
            provision: cloud.provision_delay.clone(),
            init: cloud.init_latency.clone(),
            sync: Distribution::Constant(sync_overhead_secs),
            model: model.clone(),
            train_dists: Mutex::new(HashMap::new()),
            stage_memo: Mutex::new(HashMap::new()),
            memo_cap: DEFAULT_STAGE_MEMO_CAP,
            counters: crate::counters::CacheCounters::default(),
        }
    }

    /// Overrides the stage-sample memo capacity (`0` = unbounded).
    #[must_use]
    pub fn with_memo_cap(mut self, cap: usize) -> DagTemplate {
        self.memo_cap = cap;
        self
    }

    /// Number of stages in the underlying spec.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The memoized train-task distribution for `stage` at `gpus` per
    /// trial.
    fn train_dist(&self, stage: usize, gpus: u32) -> Distribution {
        let mut memo = self.train_dists.lock().expect("train-dist memo poisoned");
        memo.entry((stage, gpus))
            .or_insert_with(|| {
                let units = self.stages[stage].1;
                self.model
                    .train_task_dist(units, gpus, PlacementQuality::Packed)
            })
            .clone()
    }

    /// Validates `plan` against the cached stage ladder, mirroring
    /// [`AllocationPlan::validate`] (same error messages).
    pub(crate) fn validate(&self, plan: &AllocationPlan) -> Result<()> {
        if plan.num_stages() != self.stages.len() {
            return Err(RbError::InvalidPlan(format!(
                "plan has {} stages, spec has {}",
                plan.num_stages(),
                self.stages.len()
            )));
        }
        for i in 0..plan.num_stages() {
            if plan.gpus(i) == 0 {
                return Err(RbError::InvalidPlan(format!(
                    "stage {i} allocates zero GPUs"
                )));
            }
        }
        Ok(())
    }

    /// Wires the execution DAG for one allocation plan — the cheap,
    /// per-plan half of [`ExecDag::build`].
    ///
    /// # Errors
    ///
    /// Returns [`rb_core::RbError::InvalidPlan`] if the plan fails
    /// validation against the spec the template was built from.
    pub fn instantiate(&self, plan: &AllocationPlan) -> Result<ExecDag> {
        self.validate(plan)?;
        let n_stages = self.stages.len();
        let mut nodes: Vec<DagNode> = Vec::new();
        let mut stage_sync = Vec::with_capacity(n_stages);
        let mut stage_scale = Vec::with_capacity(n_stages);
        let mut stage_instances = Vec::with_capacity(n_stages);
        let mut stage_new = Vec::with_capacity(n_stages);
        let mut total_instances = 0u32;
        let mut current_instances = 0u32;
        // The frontier: nodes with out-degree zero that the next stage's
        // first tasks must depend on.
        let mut frontier: Vec<usize> = Vec::new();

        for i in 0..n_stages {
            let (trials, units) = self.stages[i];
            let alloc = plan.gpus(i);
            let needed = AllocationPlan::effective_instances(alloc, trials, self.gpg);

            // 1. Cluster scaling, when the stage needs more instances.
            let mut stage_deps = frontier.clone();
            if needed > current_instances {
                let k = needed - current_instances;
                let scale_idx = nodes.len();
                nodes.push(DagNode {
                    kind: NodeKind::Scale {
                        stage: i,
                        new_instances: k,
                    },
                    latency: Latency::MaxOf {
                        dist: self.provision.clone(),
                        n: k,
                    },
                    preds: frontier.clone(),
                });
                stage_scale.push(Some(scale_idx));
                let mut init_idxs = Vec::with_capacity(k as usize);
                for _ in 0..k {
                    let idx = nodes.len();
                    nodes.push(DagNode {
                        kind: NodeKind::InitInstance { stage: i },
                        latency: Latency::Dist(self.init.clone()),
                        preds: vec![scale_idx],
                    });
                    init_idxs.push(idx);
                }
                // Training barriers on the whole new cluster being ready;
                // the previous frontier is implied transitively via SCALE.
                stage_deps = init_idxs;
                total_instances += k;
                stage_new.push(k);
            } else {
                // Deprovisioning (shrink) is a low-latency, zero-cost event
                // and is unrepresented in the DAG (§4.2).
                stage_scale.push(None);
                stage_new.push(0);
            }
            current_instances = needed;
            stage_instances.push(needed);

            // 2. Training tasks: all-parallel when GPUs suffice, otherwise
            //    waves of `alloc` single-GPU trials chained serially.
            let gpt = if alloc >= trials { alloc / trials } else { 1 };
            let parallel_slots = if alloc >= trials { trials } else { alloc };
            let train_dist = self.train_dist(i, gpt);
            let mut train_idxs = Vec::with_capacity(trials as usize);
            for slot in 0..trials {
                let preds = if slot < parallel_slots {
                    stage_deps.clone()
                } else {
                    vec![train_idxs[(slot - parallel_slots) as usize]]
                };
                let idx = nodes.len();
                nodes.push(DagNode {
                    kind: NodeKind::Train {
                        stage: i,
                        trial_slot: slot,
                        units,
                        gpus: gpt,
                    },
                    latency: Latency::Dist(train_dist.clone()),
                    preds,
                });
                train_idxs.push(idx);
            }

            // 3. The synchronization barrier over every trial in the stage.
            let sync_idx = nodes.len();
            nodes.push(DagNode {
                kind: NodeKind::Sync { stage: i },
                latency: Latency::Dist(self.sync.clone()),
                preds: train_idxs,
            });
            stage_sync.push(sync_idx);
            frontier = vec![sync_idx];
        }

        Ok(ExecDag {
            nodes,
            stage_sync,
            stage_scale,
            stage_instances,
            stage_new_instances: stage_new,
            total_instances,
        })
    }

    /// The plan's per-stage instance ladder: instances held and newly
    /// provisioned at each stage, plus the job total — the plan-level
    /// metadata [`DagTemplate::instantiate`] derives, without wiring nodes.
    /// The plan must already be validated.
    pub(crate) fn instance_ladder(&self, plan: &AllocationPlan) -> (Vec<u32>, Vec<u32>, u32) {
        let mut needed = Vec::with_capacity(self.stages.len());
        let mut new_inst = Vec::with_capacity(self.stages.len());
        let total = self.instance_ladder_into(plan, &mut needed, &mut new_inst);
        (needed, new_inst, total)
    }

    /// [`DagTemplate::instance_ladder`] into caller-owned buffers — the
    /// arena-backed prediction path reuses its scratch vectors across
    /// plans, so the ladder must not allocate. Buffers are cleared first;
    /// returns the job's total provisioned instances.
    pub(crate) fn instance_ladder_into(
        &self,
        plan: &AllocationPlan,
        needed: &mut Vec<u32>,
        new_inst: &mut Vec<u32>,
    ) -> u32 {
        needed.clear();
        new_inst.clear();
        let mut current = 0u32;
        let mut total = 0u32;
        for (s, &(trials, _)) in self.stages.iter().enumerate() {
            let need = AllocationPlan::effective_instances(plan.gpus(s), trials, self.gpg);
            let k = need.saturating_sub(current);
            needed.push(need);
            new_inst.push(k);
            total += k;
            current = need;
        }
        total
    }

    /// Draws one execution sample of stage `stage` under `alloc` GPUs,
    /// provisioning `new_instances` fresh instances, relative to the
    /// stage's start.
    ///
    /// This is the stage-local slice of what
    /// [`ExecDag::sample_schedule_seeded`] draws for the same stage of a
    /// full plan: node randomness comes from the same `(stage, ordinal)`
    /// counter streams, and the relative timeline mirrors the DAG edges
    /// (SCALE → INITs → parallel/wave TRAINs → SYNC). Stages are separated
    /// by full barriers, so a plan's prediction is exactly the composition
    /// of its stage samples.
    pub fn sample_stage(
        &self,
        stage: usize,
        alloc: u32,
        new_instances: u32,
        sample_seed: u64,
        pricing: &CloudPricing,
    ) -> StageSample {
        let (trials, _) = self.stages[stage];
        let k = new_instances;
        let mut rng = Prng::for_stream(sample_seed, stage as u64);

        // 1. SCALE + INITs, when the stage grows the cluster. Training
        //    barriers on every new instance being initialized.
        let (ready, handover) = if k > 0 {
            let scale_f = (0..k)
                .map(|_| self.provision.sample(&mut rng))
                .fold(0.0_f64, f64::max);
            let mut ready = 0.0_f64;
            for _ in 0..k {
                ready = ready.max(scale_f + self.init.sample(&mut rng).max(0.0));
            }
            (ready, scale_f)
        } else {
            (0.0, 0.0)
        };

        // 2. TRAIN tasks: all-parallel when GPUs suffice, otherwise waves
        //    of `alloc` single-GPU trials chained serially.
        let gpt = if alloc >= trials { alloc / trials } else { 1 };
        let parallel_slots = if alloc >= trials { trials } else { alloc };
        let train_dist = self.train_dist(stage, gpt);
        let mut finishes: Vec<f64> = Vec::with_capacity(trials as usize);
        let mut fn_charge = Cost::ZERO;
        for slot in 0..trials {
            let start = if slot < parallel_slots {
                ready
            } else {
                finishes[(slot - parallel_slots) as usize]
            };
            let d = train_dist.sample(&mut rng).max(0.0);
            fn_charge += pricing.function_charge(gpt, SimDuration::from_secs_f64(d));
            finishes.push(start + d);
        }

        // 3. The SYNC barrier over every trial.
        let sync_start = finishes.iter().copied().fold(0.0_f64, f64::max);
        let sync_d = self.sync.sample(&mut rng).max(0.0);

        StageSample {
            dur: sync_start + sync_d,
            handover,
            fn_charge,
        }
    }

    /// The memoized Monte-Carlo samples of one stage configuration:
    /// `samples` draws of [`DagTemplate::sample_stage`], sample `i` seeded
    /// exactly like sample `i` of a full prediction. The planner evaluates
    /// hundreds of candidate plans that differ in one stage — every stage
    /// they share comes out of this memo instead of being re-simulated.
    ///
    /// The key is the stage's *canonical* sampling configuration: the
    /// allocation enters only through `(gpus_per_trial, parallel_slots)`,
    /// so allocations that quantize to the same trial layout share one
    /// entry; and a stage that does not grow the cluster
    /// (`new_instances == 0` — every stage of a shrinking SHA ladder but
    /// the first) samples identically whatever the prior cluster size, so
    /// plans with different early stages still share it.
    pub fn stage_samples(
        &self,
        stage: usize,
        alloc: u32,
        new_instances: u32,
        seed: u64,
        samples: u32,
        pricing: &CloudPricing,
    ) -> Arc<Vec<StageSample>> {
        let (trials, _) = self.stages[stage];
        let gpt = if alloc >= trials { alloc / trials } else { 1 };
        let parallel_slots = if alloc >= trials { trials } else { alloc };
        let key = (stage, gpt, parallel_slots, new_instances, seed);
        {
            let memo = self.stage_memo.lock().expect("stage-sample memo poisoned");
            if let Some(v) = memo.get(&key) {
                if v.len() >= samples as usize {
                    self.counters.hits_add(1);
                    return v.clone();
                }
            }
        }
        self.counters.misses_add(1);
        // Computed outside the lock; a racing thread derives the exact
        // same values from the same counters, so last-write-wins is safe.
        let v: Arc<Vec<StageSample>> = Arc::new(
            (0..samples)
                .map(|i| {
                    let sample_seed = Prng::for_stream(seed, u64::from(i)).next_u64();
                    self.sample_stage(stage, alloc, new_instances, sample_seed, pricing)
                })
                .collect(),
        );
        let mut memo = self.stage_memo.lock().expect("stage-sample memo poisoned");
        if self.memo_cap > 0 && memo.len() >= self.memo_cap && !memo.contains_key(&key) {
            // Generation eviction: drop the whole memo rather than track
            // recency. Outstanding `Arc`s handed to callers stay valid.
            self.counters.evictions_add(memo.len() as u64);
            memo.clear();
        }
        memo.insert(key, v.clone());
        v
    }

    /// Number of stage configurations currently memoized (introspection
    /// for tests and benchmarks).
    pub fn cached_stage_configs(&self) -> usize {
        self.stage_memo
            .lock()
            .expect("stage-sample memo poisoned")
            .len()
    }

    /// Hit/miss/eviction totals of the stage-sample memo since this
    /// template was built.
    pub fn memo_stats(&self) -> rb_obs::CacheStats {
        self.counters.snapshot()
    }
}

impl ExecDag {
    /// Builds the DAG for `spec` executed under `plan` with the given
    /// profiles. `sync_overhead_secs` is the barrier's evaluation latency.
    ///
    /// One-shot convenience over [`DagTemplate`]: callers evaluating many
    /// plans against one spec should build the template once and
    /// [`DagTemplate::instantiate`] per plan instead.
    ///
    /// # Errors
    ///
    /// Returns [`rb_core::RbError::InvalidPlan`] if the plan fails
    /// validation against the spec.
    pub fn build(
        spec: &ExperimentSpec,
        plan: &AllocationPlan,
        model: &ModelProfile,
        cloud: &CloudProfile,
        sync_overhead_secs: f64,
    ) -> Result<ExecDag> {
        DagTemplate::new(spec, model, cloud, sync_overhead_secs).instantiate(plan)
    }

    /// Draws one execution sample: samples every node's latency and
    /// propagates finish times along dependency edges (the vector order is
    /// topological), filling `duration[i]` and `finish[i]` for every node.
    /// This is the per-sample kernel shared by sampling
    /// ([`crate::Simulator::sample_run`]) and per-stage attribution
    /// ([`crate::Simulator::explain`]); the buffers are cleared and
    /// resized, so they can be reused across samples to avoid
    /// re-allocation on the hot path.
    ///
    /// The whole sample is derived from one `u64` drawn off `rng`, so a
    /// caller-held generator keeps its usual role as the source of
    /// sample-to-sample variation.
    pub fn sample_schedule(&self, rng: &mut Prng, finish: &mut Vec<f64>, duration: &mut Vec<f64>) {
        let sample_seed = rng.next_u64();
        self.sample_schedule_seeded(sample_seed, finish, duration);
    }

    /// [`ExecDag::sample_schedule`] with the sample's seed made explicit.
    ///
    /// Each *stage* draws from its own counter-derived stream
    /// (`Prng::for_stream(sample_seed, stage)`), with the stage's nodes
    /// consuming it in construction order — rather than the whole DAG
    /// consuming one sequential stream. A stage's randomness therefore
    /// depends only on the sample seed and the stage's own configuration —
    /// the property that lets [`DagTemplate::stage_samples`] memoize
    /// per-stage samples and share them across candidate plans.
    pub fn sample_schedule_seeded(
        &self,
        sample_seed: u64,
        finish: &mut Vec<f64>,
        duration: &mut Vec<f64>,
    ) {
        let n = self.nodes.len();
        finish.clear();
        finish.resize(n, 0.0);
        duration.clear();
        duration.resize(n, 0.0);
        let mut cur_stage = usize::MAX;
        let mut rng = Prng::for_stream(sample_seed, 0);
        for (i, node) in self.nodes.iter().enumerate() {
            let s = node.kind.stage();
            if s != cur_stage {
                cur_stage = s;
                rng = Prng::for_stream(sample_seed, s as u64);
            }
            let start = node
                .preds
                .iter()
                .map(|&p| finish[p])
                .fold(0.0_f64, f64::max);
            let d = node.latency.sample(&mut rng);
            duration[i] = d;
            finish[i] = start + d;
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the DAG has no nodes (never the case for a valid spec).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over nodes of a given stage and kind (test/debug helper).
    pub fn train_nodes(&self, stage: usize) -> impl Iterator<Item = (usize, &DagNode)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, n)| matches!(n.kind, NodeKind::Train { stage: s, .. } if s == stage))
    }

    /// Renders the DAG in Graphviz DOT format — the representation the
    /// paper draws in Fig. 7. Node labels carry the task kind and mean
    /// latency; `dot -Tsvg` turns the output into the figure.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("digraph exec {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let (label, color) = match n.kind {
                NodeKind::Scale { new_instances, .. } => {
                    (format!("SCALE +{new_instances}"), "lightblue")
                }
                NodeKind::InitInstance { .. } => ("INIT".to_string(), "lightcyan"),
                NodeKind::Train {
                    trial_slot,
                    units,
                    gpus,
                    ..
                } => (
                    format!("TRAIN t{trial_slot}\\n{units}u x {gpus}g"),
                    "palegreen",
                ),
                NodeKind::Sync { stage } => (format!("SYNC s{stage}"), "gold"),
            };
            let _ = writeln!(
                out,
                "  n{i} [label=\"{label}\\n~{:.1}s\", style=filled, fillcolor={color}];",
                n.latency.mean()
            );
            for &p in &n.preds {
                let _ = writeln!(out, "  n{p} -> n{i};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::{P3_2XLARGE, P3_8XLARGE};
    use rb_cloud::CloudPricing;
    use rb_scaling::IdealScaling;
    use std::sync::Arc;

    fn model() -> ModelProfile {
        ModelProfile::from_scaling("ideal", Arc::new(IdealScaling::new(4.0, 512)), 1, 0.0, 0.0)
    }

    fn cloud_1gpu() -> CloudProfile {
        CloudProfile::new(CloudPricing::on_demand(P3_2XLARGE))
            .with_provision_delay(rb_core::SimDuration::from_secs(10))
            .with_init_latency(rb_core::SimDuration::from_secs(20))
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec::from_stages(&[(4, 10), (2, 10), (1, 10)]).unwrap()
    }

    #[test]
    fn node_census_for_shrinking_plan() {
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![4, 2, 1]),
            &model(),
            &cloud_1gpu(),
            1.0,
        )
        .unwrap();
        // Stage 0: 1 SCALE + 4 INIT + 4 TRAIN + 1 SYNC = 10.
        // Stages 1, 2: shrink (no scale) → (2 TRAIN + SYNC) + (1 TRAIN + SYNC).
        assert_eq!(dag.len(), 10 + 3 + 2);
        assert_eq!(dag.total_instances, 4);
        assert_eq!(dag.stage_instances, vec![4, 2, 1]);
        assert_eq!(dag.stage_new_instances, vec![4, 0, 0]);
        assert!(dag.stage_scale[0].is_some());
        assert!(dag.stage_scale[1].is_none());
    }

    #[test]
    fn growth_adds_scale_and_init_nodes_mid_job() {
        // Growing plan 1 → 4 → 4.
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![1, 2, 4]),
            &model(),
            &cloud_1gpu(),
            1.0,
        )
        .unwrap();
        assert_eq!(dag.stage_new_instances, vec![1, 1, 2]);
        assert_eq!(dag.total_instances, 4);
        // The stage-1 scale node depends on stage-0's sync.
        let scale1 = dag.stage_scale[1].unwrap();
        assert_eq!(dag.nodes[scale1].preds, vec![dag.stage_sync[0]]);
    }

    #[test]
    fn wave_scheduling_builds_serial_chains() {
        // 4 trials on 1 GPU → slots=1: trial k depends on trial k-1.
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![1, 2, 1]),
            &model(),
            &cloud_1gpu(),
            1.0,
        )
        .unwrap();
        let trains: Vec<usize> = dag.train_nodes(0).map(|(i, _)| i).collect();
        assert_eq!(trains.len(), 4);
        for w in trains.windows(2) {
            assert_eq!(dag.nodes[w[1]].preds, vec![w[0]], "serial chain broken");
        }
        // Stage 1: 2 trials on 2 GPUs → both parallel, depending on sync 0.
        let t1: Vec<&DagNode> = dag.train_nodes(1).map(|(_, n)| n).collect();
        assert_eq!(t1[0].preds, t1[1].preds);
    }

    #[test]
    fn multi_gpu_instances_change_instance_math() {
        // p3.8xlarge (4 GPUs): 8 GPUs for 4 trials = 2 instances.
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![8, 4, 2]),
            &model(),
            &cloud,
            1.0,
        )
        .unwrap();
        assert_eq!(dag.stage_instances, vec![2, 1, 1]);
        // Each trial gets 2 GPUs in stage 0.
        for (_, n) in dag.train_nodes(0) {
            match n.kind {
                NodeKind::Train { gpus, .. } => assert_eq!(gpus, 2),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn invalid_plan_is_rejected() {
        // Wrong stage count.
        assert!(ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![4, 2]),
            &model(),
            &cloud_1gpu(),
            1.0
        )
        .is_err());
    }

    #[test]
    fn uneven_allocation_runs_waves_with_idle_remainder() {
        // 3 GPUs for 4 trials: 3 parallel slots, the 4th chains on slot 0.
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![3, 2, 1]),
            &model(),
            &cloud_1gpu(),
            1.0,
        )
        .unwrap();
        let trains: Vec<usize> = dag.train_nodes(0).map(|(i, _)| i).collect();
        assert_eq!(trains.len(), 4);
        assert_eq!(dag.nodes[trains[3]].preds, vec![trains[0]]);
        assert_eq!(dag.nodes[trains[1]].preds, dag.nodes[trains[0]].preds);
    }

    #[test]
    fn preds_are_topologically_ordered() {
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![2, 2, 2]),
            &model(),
            &cloud_1gpu(),
            1.0,
        )
        .unwrap();
        for (i, n) in dag.nodes.iter().enumerate() {
            for &p in &n.preds {
                assert!(p < i, "node {i} depends on later node {p}");
            }
        }
    }

    #[test]
    fn sync_depends_on_every_train_in_stage() {
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![4, 2, 1]),
            &model(),
            &cloud_1gpu(),
            1.0,
        )
        .unwrap();
        for stage in 0..3 {
            let sync = &dag.nodes[dag.stage_sync[stage]];
            let trains: Vec<usize> = dag.train_nodes(stage).map(|(i, _)| i).collect();
            assert_eq!(sync.preds, trains);
        }
    }

    #[test]
    fn dot_rendering_covers_every_node_and_edge() {
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![4, 2, 1]),
            &model(),
            &cloud_1gpu(),
            1.0,
        )
        .unwrap();
        let dot = dag.to_dot();
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("SCALE").count(), 1);
        assert_eq!(dot.matches("INIT").count(), 4);
        assert_eq!(dot.matches("TRAIN").count(), 4 + 2 + 1);
        assert_eq!(dot.matches("SYNC").count(), 3);
        let edges: usize = dag.nodes.iter().map(|n| n.preds.len()).sum();
        assert_eq!(dot.matches(" -> ").count(), edges);
    }

    #[test]
    fn template_instantiation_matches_one_shot_build() {
        let template = DagTemplate::new(&spec(), &model(), &cloud_1gpu(), 1.0);
        for gpus in [vec![4, 2, 1], vec![1, 2, 4], vec![3, 2, 1], vec![8, 4, 2]] {
            let plan = AllocationPlan::new(gpus);
            let from_template = template.instantiate(&plan).unwrap();
            let one_shot = ExecDag::build(&spec(), &plan, &model(), &cloud_1gpu(), 1.0).unwrap();
            assert_eq!(from_template.nodes, one_shot.nodes);
            assert_eq!(from_template.stage_sync, one_shot.stage_sync);
            assert_eq!(from_template.stage_scale, one_shot.stage_scale);
            assert_eq!(from_template.stage_instances, one_shot.stage_instances);
            assert_eq!(
                from_template.stage_new_instances,
                one_shot.stage_new_instances
            );
            assert_eq!(from_template.total_instances, one_shot.total_instances);
        }
        // Invalid plans are rejected with the same error kind.
        assert!(template
            .instantiate(&AllocationPlan::new(vec![4, 2]))
            .is_err());
        assert!(template
            .instantiate(&AllocationPlan::new(vec![4, 0, 1]))
            .is_err());
    }

    #[test]
    fn sample_schedule_reuses_buffers() {
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![4, 2, 1]),
            &model(),
            &cloud_1gpu(),
            1.0,
        )
        .unwrap();
        let mut finish = vec![99.0; 3]; // wrong size on purpose
        let mut duration = Vec::new();
        let mut rng = Prng::seed_from_u64(1);
        dag.sample_schedule(&mut rng, &mut finish, &mut duration);
        assert_eq!(finish.len(), dag.len());
        assert_eq!(duration.len(), dag.len());
        // Deterministic spec ⇒ the sink finish time is the exact JCT.
        let jct = finish.iter().copied().fold(0.0_f64, f64::max);
        assert_eq!(jct, 153.0);
    }

    #[test]
    fn maxof_latency_sampling_dominates_single_draw() {
        let dist = Distribution::lognormal_from_moments(10.0, 5.0);
        let single = Latency::Dist(dist.clone());
        let max8 = Latency::MaxOf { dist, n: 8 };
        let mut r1 = Prng::seed_from_u64(1);
        let mut r2 = Prng::seed_from_u64(1);
        let mut s_sum = 0.0;
        let mut m_sum = 0.0;
        for _ in 0..500 {
            s_sum += single.sample(&mut r1);
            m_sum += max8.sample(&mut r2);
        }
        assert!(m_sum > s_sum, "max of 8 draws should exceed one draw");
    }
}
