//! The stage-by-stage execution engine (§5).
//!
//! The executor owns the control loop: per stage it scales the cluster to
//! the plan's allocation, places (or migrates) trial workers, runs every
//! trial for the stage's iterations with noisy per-iteration latencies,
//! synchronizes, ranks trials and promotes the top performers. All time
//! is virtual; all money flows through the cluster manager's billing
//! meter. Noise streams are per-trial, so results are independent of
//! scheduling order and bit-reproducible from the seed.

use crate::cluster::{ClusterManager, RetryPolicy, SwitchDirective};
use crate::report::{ExecutionReport, ExecutionTrace, StageRecord, TraceEvent};
use rb_cloud::{FaultPlan, PricingTier};
use rb_core::{mix_seed, Cost, Distribution, Prng, RbError, Result, SimDuration, SimTime, TrialId};
use rb_hpo::{select_survivors, Config, ExperimentSpec};
use rb_obs::{Lane, RecorderHandle, SpanTracker, Value};
use rb_placement::{scatter_placement, ClusterState, PlacementController, PlacementPlan};
use rb_profile::{CapacityEvents, CloudProfile, ModelProfile};
use rb_scaling::PlacementQuality;
use rb_sim::AllocationPlan;
use rb_train::checkpoint::{CheckpointStore, VerifiedFetch};
use rb_train::{TaskModel, Trial, TrialStatus};
use std::collections::BTreeMap;

/// Executor knobs.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Root seed for all execution randomness.
    pub seed: u64,
    /// Barrier evaluation latency, in seconds.
    pub sync_overhead_secs: f64,
    /// Use the placement controller (§4.4). When false, workers are
    /// scattered with no locality — the Table 1 ablation baseline.
    pub use_placement_controller: bool,
    /// Bandwidth for moving checkpoints during migration, in GB/s.
    pub checkpoint_bw_gbps: f64,
    /// Warm-pool capacity (§6.3.1 runs with a warm pool): released
    /// instances up to this count stay billed for `warm_hold_secs` and
    /// reattach in seconds instead of a provision + init cycle. Zero
    /// disables the pool.
    pub warm_pool: usize,
    /// How long a warm instance is held before being released for real.
    pub warm_hold_secs: f64,
    /// Fault-injection plan, seeded from `seed` like the spot stream. The
    /// default ([`FaultPlan::none`]) injects nothing and leaves execution
    /// bit-identical to a build without the chaos layer.
    pub faults: FaultPlan,
    /// Provisioning retry/backoff policy. `None` (the default) keeps the
    /// legacy fail-fast path: a capacity denial aborts the run. The
    /// resilient path only engages when a fault plan is active, so a
    /// policy configured against a clean provider changes nothing.
    pub retry: Option<RetryPolicy>,
    /// Checkpoint generations retained per trial (last K). The default
    /// of 1 matches the original store; raising it lets a corrupted
    /// latest generation fall back to the previous one.
    pub checkpoint_retention: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            seed: 0x5EED,
            sync_overhead_secs: 1.0,
            use_placement_controller: true,
            checkpoint_bw_gbps: 1.0,
            warm_pool: 0,
            warm_hold_secs: 300.0,
            faults: FaultPlan::none(),
            retry: None,
            checkpoint_retention: 1,
        }
    }
}

impl ExecOptions {
    /// Checks the numeric knobs for values that would otherwise corrupt a
    /// run silently (a NaN sync overhead propagates into every barrier
    /// timestamp; a zero checkpoint bandwidth divides by zero).
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<()> {
        for (what, v, needs_positive) in [
            ("sync_overhead_secs", self.sync_overhead_secs, false),
            ("checkpoint_bw_gbps", self.checkpoint_bw_gbps, true),
            ("warm_hold_secs", self.warm_hold_secs, false),
        ] {
            if !v.is_finite() || v < 0.0 || (needs_positive && v == 0.0) {
                return Err(RbError::InvalidConfig(format!(
                    "exec options: {what} must be finite and {}, got {v}",
                    if needs_positive {
                        "positive"
                    } else {
                        "non-negative"
                    }
                )));
            }
        }
        if let Some(retry) = &self.retry {
            retry.validate()?;
        }
        Ok(())
    }
}

/// Everything an online controller can observe at a completed stage
/// barrier. All survivors are paused and checkpointed at this point, so a
/// plan change applied here never strands a trial without a checkpoint —
/// the barrier is the executor's only safe reallocation point.
#[derive(Debug, Clone)]
pub struct BarrierSnapshot<'a> {
    /// The stage that just completed (0-based).
    pub stage: usize,
    /// Total stages in the specification.
    pub num_stages: usize,
    /// Virtual time at the barrier (after sync overhead).
    pub now: SimTime,
    /// Wall-clock span of the completed stage, barrier to barrier — it
    /// includes scaling, provisioning waits, training, and the sync
    /// overhead, matching the per-stage spans the planner's Monte-Carlo
    /// model predicts.
    pub stage_span: SimDuration,
    /// Compute + data bill accrued so far.
    pub cost_to_date: Cost,
    /// Spot preemptions absorbed so far.
    pub preemptions: u32,
    /// Instances currently held.
    pub instances: usize,
    /// Trials promoted into the next stage.
    pub survivors: usize,
    /// GPUs each of this stage's trials ran on (1 for wave-scheduled
    /// stages).
    pub gpus_per_trial: u32,
    /// Observed per-allocation work-unit latencies for the completed
    /// stage — the raw material for online profile refitting.
    pub unit_obs: Vec<UnitObservation>,
    /// Total instance-seconds held (billed) so far. Dividing
    /// `preemptions` by this gives the observed spot interruption rate.
    pub instance_seconds: f64,
    /// Instances the completed stage wanted but could not get after
    /// provisioning retries were exhausted (zero on a healthy cloud).
    /// The stage ran degraded on the reduced allocation; a controller
    /// should treat this as a replan trigger.
    pub capacity_shortfall: u32,
    /// Provisioning requests, denials, retries, and correlated outage
    /// kills observed since the run started. A controller that wants a
    /// *window* diffs against the previous barrier's totals; feeding
    /// the window to `CloudProfile::risk_from_events` re-prices the
    /// residual plan against the capacity the run is actually seeing.
    pub capacity_events: CapacityEvents,
    /// The provider zone new capacity is currently requested from.
    pub home_zone: u32,
    /// Zones the active fault plan declares (1 when zones are off).
    pub num_zones: u32,
    /// The plan currently in force (full job, all stages).
    pub plan: &'a AllocationPlan,
}

/// Observed mean latency of one work unit at one allocation shape,
/// averaged over `units` completed units of one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitObservation {
    /// GPUs per trial the units ran on.
    pub gpus: u32,
    /// Placement quality the gangs ran under.
    pub placement: PlacementQuality,
    /// Mean observed wall-clock seconds per unit.
    pub mean_secs: f64,
    /// Units the mean was taken over.
    pub units: u64,
}

/// What a watchdog hook sees when a stage overruns its virtual-time
/// budget mid-stage. Every live trial has been paused and checkpointed
/// at a forced early barrier, so a plan splice here is transition-safe
/// exactly like one at a normal barrier.
#[derive(Debug, Clone)]
pub struct WatchdogSnapshot<'a> {
    /// The stage that overran (0-based). It is *not* finished: its
    /// residual units re-run under whatever the hook splices in.
    pub stage: usize,
    /// Total stages in the specification.
    pub num_stages: usize,
    /// Virtual time at the forced barrier (after sync overhead).
    pub now: SimTime,
    /// When the stage's training round started.
    pub stage_start: SimTime,
    /// The budget that was exceeded, in seconds of training time.
    pub budget_secs: f64,
    /// Work units the stage owes per trial in total.
    pub units: u64,
    /// The largest number of units any live trial still has to run.
    pub max_remaining_units: u64,
    /// Observed per-allocation unit latencies from the truncated round.
    pub unit_obs: Vec<UnitObservation>,
    /// Compute + data bill accrued so far.
    pub cost_to_date: Cost,
    /// Spot preemptions absorbed so far.
    pub preemptions: u32,
    /// Instances currently held.
    pub instances: usize,
    /// Total instance-seconds held (billed) so far.
    pub instance_seconds: f64,
    /// Trials live in the interrupted stage.
    pub survivors: usize,
    /// Cumulative capacity-fault tallies, as in
    /// [`BarrierSnapshot::capacity_events`].
    pub capacity_events: CapacityEvents,
    /// The provider zone new capacity is currently requested from.
    pub home_zone: u32,
    /// Zones the active fault plan declares (1 when zones are off).
    pub num_zones: u32,
    /// The plan currently in force (full job, all stages).
    pub plan: &'a AllocationPlan,
}

/// A controller invoked at every non-final stage barrier. Returning
/// `Some(gpus)` — one GPU count per *remaining* stage — splices a new
/// allocation suffix into the plan before the next stage is scheduled;
/// `None` leaves the plan untouched.
///
/// The hook runs outside the executor's noise streams: a hook that
/// returns `None` from every method must leave execution bit-identical
/// to [`Executor::run`]. Arming a watchdog budget that never fires also
/// keeps the run bit-identical — the deadline check consumes no noise
/// samples.
pub trait BarrierHook {
    /// Observes a completed barrier; optionally re-plans the remainder.
    fn at_barrier(&mut self, snapshot: &BarrierSnapshot<'_>) -> Option<Vec<u32>>;

    /// Arms a virtual-time watchdog for `stage`: when the stage's
    /// training round runs past `stage_start + budget` seconds, the
    /// executor forces an early barrier at the next per-trial unit
    /// boundary instead of letting the overrun go undetected until the
    /// stage drains. `None` (the default) disables the watchdog.
    fn stage_budget_secs(&mut self, _stage: usize) -> Option<f64> {
        None
    }

    /// Observes a fired watchdog; optionally re-plans from the
    /// *current* stage onward. Unlike [`BarrierHook::at_barrier`], the
    /// suffix covers the interrupted stage too: its length must be
    /// `num_stages - stage`, and `suffix[0]` re-allocates the residual
    /// units of the stage that overran.
    fn at_watchdog(&mut self, _snapshot: &WatchdogSnapshot<'_>) -> Option<Vec<u32>> {
        None
    }

    /// A market/zone switch for the executor to *execute* at the safe
    /// point that just completed (a barrier or a watchdog splice). The
    /// executor drains the fleet through
    /// [`ClusterManager::switch_market`] — in-flight lifetimes pinned at
    /// their contracted tier, ready nodes parked or terminated by
    /// handoff cost — before the next scale-up provisions on the new
    /// market. Polled after the corresponding re-plan callback, so a
    /// hook can decide the switch and the suffix together. The default
    /// never switches; returning `None` (or an empty directive)
    /// consumes no noise and leaves execution bit-identical.
    fn pending_switch(&mut self) -> Option<SwitchDirective> {
        None
    }
}

/// The open-loop hook: never re-plans.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopHook;

impl BarrierHook for NoopHook {
    fn at_barrier(&mut self, _snapshot: &BarrierSnapshot<'_>) -> Option<Vec<u32>> {
        None
    }
}

/// Executes one experiment specification under one allocation plan.
#[derive(Debug, Clone)]
pub struct Executor {
    spec: ExperimentSpec,
    plan: AllocationPlan,
    task: TaskModel,
    /// Ground-truth training physics (the executor's reality; the planner
    /// sees only the *profiled* approximation of this).
    physics: ModelProfile,
    cloud: CloudProfile,
    options: ExecOptions,
}

struct RunningTrial {
    trial: Trial,
    rng: Prng,
    busy_secs: f64,
    units_done: u64,
}

/// Everything the scaling + placement pass produces for one training
/// round: the cluster view, where every trial's workers sit, and the
/// wave-scheduling shape. A watchdog-split stage runs this pass twice.
struct StageSetup {
    cluster: ClusterState,
    placement: PlacementPlan,
    allocations: BTreeMap<TrialId, u32>,
    moved: Vec<TrialId>,
    slots: usize,
    needed: usize,
    migrations: u32,
    /// Provisioning retry rounds the scaling pass issued.
    retries: u64,
    /// Instances wanted but not acquired; when non-zero the stage runs
    /// degraded on a shrunken allocation.
    capacity_shortfall: usize,
}

/// The outcome of one training round over the live trials.
struct RoundOutcome {
    /// When the last trial's last segment ended.
    stage_end: SimTime,
    /// Units still owed per trial after a watchdog cut; empty when the
    /// round ran to completion (the watchdog never fired).
    remaining: BTreeMap<TrialId, u64>,
    /// Completed-unit latency sums keyed by `(gpus, packed)`:
    /// `(total_secs, units)`.
    unit_obs: BTreeMap<(u32, bool), (f64, u64)>,
    /// Provisioning retry rounds issued while replacing preempted nodes.
    retries: u64,
    /// Checkpoint fetches that fell back to an older generation after
    /// the newest failed verification.
    fallbacks: u64,
}

fn unit_obs_vec(obs: &BTreeMap<(u32, bool), (f64, u64)>) -> Vec<UnitObservation> {
    obs.iter()
        .filter(|&(_, &(_, n))| n > 0)
        .map(|(&(gpus, packed), &(sum, n))| UnitObservation {
            gpus,
            placement: if packed {
                PlacementQuality::Packed
            } else {
                PlacementQuality::Scattered
            },
            mean_secs: sum / n as f64,
            units: n,
        })
        .collect()
}

fn merge_unit_obs(
    into: &mut BTreeMap<(u32, bool), (f64, u64)>,
    from: BTreeMap<(u32, bool), (f64, u64)>,
) {
    for (k, (sum, n)) in from {
        let e = into.entry(k).or_insert((0.0, 0));
        e.0 += sum;
        e.1 += n;
    }
}

/// Appends `ev` to the local trace and mirrors it onto the unified bus.
/// The local [`ExecutionTrace`] stays the report's canonical event log;
/// the recorder stream is a superset of it (tests assert
/// [`ExecutionTrace::from_events`] recovers the trace exactly).
fn emit(trace: &mut ExecutionTrace, recorder: &RecorderHandle, ev: TraceEvent) {
    if recorder.enabled() {
        recorder.record(ev.to_obs());
    }
    trace.events.push(ev);
}

impl Executor {
    /// Creates an executor with default options.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidPlan`] if the plan does not match the
    /// spec.
    pub fn new(
        spec: ExperimentSpec,
        plan: AllocationPlan,
        task: TaskModel,
        physics: ModelProfile,
        cloud: CloudProfile,
    ) -> Result<Self> {
        plan.validate(&spec)?;
        Ok(Executor {
            spec,
            plan,
            task,
            physics,
            cloud,
            options: ExecOptions::default(),
        })
    }

    /// Overrides the executor options.
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the experiment over the given configurations (one per initial
    /// trial) and returns the execution report.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] when fewer configurations than
    /// initial trials are supplied; placement/provider/execution errors
    /// propagate.
    pub fn run(&self, configs: &[Config]) -> Result<ExecutionReport> {
        self.run_hooked(configs, &mut NoopHook)
    }

    /// [`Executor::run`] with a [`BarrierHook`] observing every non-final
    /// stage barrier and optionally re-planning the remaining stages.
    /// With [`NoopHook`] this is bit-identical to `run`.
    ///
    /// # Errors
    ///
    /// As [`Executor::run`]; additionally [`RbError::InvalidPlan`] when a
    /// hook returns a suffix of the wrong length or one that fails plan
    /// validation against the spec.
    pub fn run_hooked(
        &self,
        configs: &[Config],
        hook: &mut dyn BarrierHook,
    ) -> Result<ExecutionReport> {
        self.run_observed(configs, hook, RecorderHandle::noop())
    }

    /// [`Executor::run_hooked`] with a [`Recorder`](rb_obs::Recorder)
    /// attached: every trace event is mirrored onto the unified bus,
    /// plus stage spans, cost/instance gauges at each barrier, the
    /// billing meter's spend curve, and run-level counters. The
    /// recorder is also installed on the cloud provider, so provision /
    /// terminate / preempt events appear on the `cloud` lane.
    ///
    /// Recording never influences execution: with
    /// [`RecorderHandle::noop`] this is bit-identical to
    /// [`Executor::run_hooked`] (which is exactly how `run_hooked`
    /// calls it).
    ///
    /// # Errors
    ///
    /// As [`Executor::run_hooked`].
    pub fn run_observed(
        &self,
        configs: &[Config],
        hook: &mut dyn BarrierHook,
        recorder: RecorderHandle,
    ) -> Result<ExecutionReport> {
        let mut core = ExecutorCore::new(self, configs, recorder)?;
        while !core.is_finished() {
            let now = core.now();
            core.step(now, hook)?;
        }
        core.finish()
    }

    /// The experiment specification this executor runs.
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// The cloud profile this executor bills against.
    pub fn cloud(&self) -> &CloudProfile {
        &self.cloud
    }

    /// The executor options in force.
    pub fn options(&self) -> &ExecOptions {
        &self.options
    }

    /// Instances stage 0 will request when this executor dispatches
    /// with no capacity live. A service doing pool-aware admission
    /// compares this against parked pool capacity: when the whole
    /// first stage can be served warm, the job skips the
    /// provision + init cycle entirely.
    pub fn first_stage_instance_demand(&self) -> u32 {
        self.plan
            .instances_for_stage(0, &self.spec, self.cloud.gpus_per_instance())
    }
}

/// Where one [`ExecutorCore::step`] call left the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A stage completed its synchronization barrier; more stages remain.
    Barrier {
        /// The 0-based stage that just finished.
        stage: usize,
        /// Virtual time at the barrier (after sync overhead).
        at: SimTime,
    },
    /// The final stage's barrier completed; call [`ExecutorCore::finish`]
    /// to tear down and collect the [`ExecutionReport`].
    Finished {
        /// Virtual time at the final barrier.
        at: SimTime,
    },
}

/// The executor's control loop as an explicit, steppable state machine.
///
/// One [`ExecutorCore::step`] advances the run by exactly one stage — up
/// to and including that stage's synchronization barrier (scaling,
/// placement, training, watchdog handling, ranking and promotion) — and
/// returns where virtual time landed. [`Executor::run`] and friends are
/// thin drivers over this (construct, step until [`StepOutcome::Finished`],
/// [`ExecutorCore::finish`]); a multi-job service interleaves many cores
/// in one discrete-event loop by always stepping the core whose clock is
/// furthest behind.
///
/// The decomposition is pure code motion: a core driven to completion is
/// bit-identical to the monolithic loop it replaced — same reports, same
/// traces, same counters (pinned by `crates/exec/tests/stepper.rs`).
pub struct ExecutorCore {
    exec: Executor,
    plan: AllocationPlan,
    gpg: u32,
    cm: ClusterManager,
    pc: PlacementController,
    store: CheckpointStore,
    trials: BTreeMap<TrialId, RunningTrial>,
    live: Vec<TrialId>,
    /// Virtual time the run started (admission time under a service;
    /// [`SimTime::ZERO`] for the legacy single-job drivers).
    t0: SimTime,
    now: SimTime,
    /// The next stage to run; `spec.num_stages()` once the run is done.
    stage: usize,
    stages: Vec<StageRecord>,
    total_migrations: u32,
    total_preemptions: u32,
    total_retries: u64,
    checkpoint_fallbacks: u64,
    degraded_stages: u32,
    trace: ExecutionTrace,
    recorder: RecorderHandle,
    /// Explicit span ids for the run/stage span pairs (only advanced
    /// when a recording sink is attached; ids are trace data, not
    /// execution state).
    spans: SpanTracker,
}

impl ExecutorCore {
    /// Prepares a run starting at virtual time zero (the single-job
    /// case). See [`ExecutorCore::new_at`].
    ///
    /// # Errors
    ///
    /// As [`ExecutorCore::new_at`].
    pub fn new(exec: &Executor, configs: &[Config], recorder: RecorderHandle) -> Result<Self> {
        Self::new_at(exec, configs, recorder, SimTime::ZERO)
    }

    /// Prepares a run whose clock starts at `start` — a job admitted into
    /// a shared service begins when the scheduler dispatches it, not at
    /// zero. All noise streams derive from the seed exactly as in
    /// [`Executor::run`], so the same job admitted at a different time
    /// replays the same training randomness.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] for malformed options or when
    /// fewer configurations than initial trials are supplied.
    pub fn new_at(
        exec: &Executor,
        configs: &[Config],
        recorder: RecorderHandle,
        start: SimTime,
    ) -> Result<Self> {
        exec.options.validate()?;
        let plan = exec.plan.clone();
        let n = exec.spec.initial_trials() as usize;
        if configs.len() < n {
            return Err(RbError::InvalidConfig(format!(
                "spec needs {n} configs, got {}",
                configs.len()
            )));
        }
        let opts = &exec.options;
        let gpg = exec.cloud.gpus_per_instance().max(1);
        let mut cm = ClusterManager::new(exec.cloud.clone(), opts.seed);
        cm.set_recorder(recorder.clone());
        if opts.warm_pool > 0 {
            cm = cm.with_warm_pool(
                opts.warm_pool,
                SimDuration::from_secs_f64(opts.warm_hold_secs),
                SimDuration::from_secs(2),
            );
        }
        if opts.faults.is_active() {
            cm.set_fault_plan(opts.faults.clone(), opts.seed);
        }
        let pc = PlacementController::new();
        let mut store = CheckpointStore::new().with_retention(opts.checkpoint_retention.max(1));
        if opts.faults.checkpoint_corruption_prob > 0.0 {
            store.set_corruption(
                opts.faults.checkpoint_corruption_prob,
                mix_seed(opts.seed, 0xC0_55_C4_A5),
            );
        }

        let mut trials: BTreeMap<TrialId, RunningTrial> = BTreeMap::new();
        for (i, cfg) in configs.iter().take(n).enumerate() {
            let id = TrialId::new(i as u64);
            let trial_seed = opts.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            trials.insert(
                id,
                RunningTrial {
                    trial: Trial::new(id, cfg.clone(), trial_seed),
                    rng: Prng::seed_from_u64(trial_seed ^ 0x7A1A_11CE),
                    busy_secs: 0.0,
                    units_done: 0,
                },
            );
        }
        let live: Vec<TrialId> = trials.keys().copied().collect();
        let mut core = ExecutorCore {
            exec: exec.clone(),
            plan,
            gpg,
            cm,
            pc,
            store,
            trials,
            live,
            t0: start,
            now: start,
            stage: 0,
            stages: Vec::new(),
            total_migrations: 0,
            total_preemptions: 0,
            total_retries: 0,
            checkpoint_fallbacks: 0,
            degraded_stages: 0,
            trace: ExecutionTrace::default(),
            recorder,
            spans: SpanTracker::new(),
        };
        if core.recorder.enabled() {
            // The run span opens the moment the core exists (admission
            // time under a service) so a streaming sink carries the
            // start long before the outcome is known; `finish` closes
            // it with the run's results.
            let (run, parent) = core.spans.open();
            core.recorder
                .span_start(start, "exec", "run", Lane::Global, run, parent, Vec::new());
        }
        Ok(core)
    }

    /// The core's virtual clock: the last completed barrier (or the start
    /// time before the first step).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The next stage [`ExecutorCore::step`] will run (0-based).
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// Total stages in the specification.
    pub fn num_stages(&self) -> usize {
        self.exec.spec.num_stages()
    }

    /// Whether every stage has run its barrier.
    pub fn is_finished(&self) -> bool {
        self.stage >= self.exec.spec.num_stages()
    }

    /// Compute + data bill accrued so far.
    pub fn cost_to_date(&self) -> Cost {
        self.cm.total_cost(self.now)
    }

    /// Routes this run's instance churn through a shared elastic pool:
    /// capacity released at barriers is offered to the pool instead of
    /// terminated outright, and scale-ups adopt pooled capacity before
    /// provisioning fresh instances. `job` tags this core's releases so
    /// the pool's double-release guard can tell donors apart; `group`
    /// (e.g. one tenant's Hyperband bracket set) gives the job
    /// affinity for same-group parked capacity at acquisition.
    pub fn attach_shared_pool(
        &mut self,
        pool: rb_cloud::SharedPool,
        job: u64,
        group: Option<u64>,
    ) {
        self.cm.set_shared_pool(pool, job, group);
    }

    /// Instances the next stage will ask the cluster for if it started
    /// now with no capacity live. Pool-aware admission uses this to
    /// decide whether a queued job's first stage could be served
    /// entirely from parked capacity (skipping provision + init).
    pub fn stage_instance_demand(&self) -> u32 {
        if self.is_finished() {
            return 0;
        }
        self.plan
            .instances_for_stage(self.stage, &self.exec.spec, self.gpg)
    }

    /// Advances the run to the next stage barrier. `now` lower-bounds the
    /// clock (a service stepping an idle job forward passes its event
    /// time; the single-job drivers pass [`ExecutorCore::now`], a no-op).
    ///
    /// # Errors
    ///
    /// As [`Executor::run_hooked`]; additionally [`RbError::Execution`]
    /// when stepped past [`StepOutcome::Finished`].
    pub fn step(&mut self, now: SimTime, hook: &mut dyn BarrierHook) -> Result<StepOutcome> {
        if self.is_finished() {
            return Err(RbError::Execution(
                "executor core stepped past the final stage".into(),
            ));
        }
        self.now = self.now.max(now);
        let stage = self.stage;
        let stage_start = self.now;
        if self.recorder.enabled() {
            let (span, parent) = self.spans.open();
            self.recorder.span_start(
                stage_start,
                "exec",
                "stage",
                Lane::Stage(stage as u32),
                span,
                parent,
                vec![("stage", (stage as u64).into())],
            );
        }
        let (stage_trials, units) = self.exec.spec.get_stage(stage)?;
        let mut setup = self.exec.scale_and_place(
            &self.plan,
            stage,
            &self.live,
            self.gpg,
            &mut self.cm,
            &mut self.pc,
            &mut self.now,
            &mut self.trace,
            &self.recorder,
        )?;
        let mut stage_migrations = setup.migrations;
        self.total_migrations += setup.migrations;
        let mut stage_shortfall = setup.capacity_shortfall;
        self.total_retries += setup.retries;

        // --- Training -------------------------------------------------------
        let train_start = self.now;
        let budget = hook.stage_budget_secs(stage);
        let watchdog_deadline = budget.and_then(|b| {
            (b.is_finite() && b > 0.0).then(|| train_start + SimDuration::from_secs_f64(b))
        });
        let full_units: BTreeMap<TrialId, u64> = self.live.iter().map(|&t| (t, units)).collect();
        let mut round = self.exec.train_round(
            stage,
            &full_units,
            &mut setup,
            &self.live,
            &mut self.trials,
            &mut self.cm,
            &self.store,
            &mut self.trace,
            &self.recorder,
            train_start,
            false,
            watchdog_deadline,
            &mut self.total_preemptions,
        )?;
        let mut stage_end = round.stage_end;
        self.total_retries += round.retries;
        self.checkpoint_fallbacks += round.fallbacks;

        // --- Watchdog: forced early barrier on a budget overrun -------------
        // The stage ran past its virtual-time envelope. Checkpoint
        // everything at the next unit boundaries (already done inside
        // the round), let the hook re-plan from the *current* stage
        // onward, re-scale, and run the residual units.
        if !round.remaining.is_empty() {
            let wd_now =
                stage_end + SimDuration::from_secs_f64(self.exec.options.sync_overhead_secs);
            for &tid in &self.live {
                let rt = self.trials.get_mut(&tid).expect("live trial exists");
                if rt.trial.status() == TrialStatus::Running {
                    rt.trial.pause()?;
                    self.store.save(&rt.trial, &self.exec.task.arch);
                }
            }
            let max_remaining = round.remaining.values().copied().max().unwrap_or(0);
            self.recorder.counter_add("exec", "watchdog_fires", 1);
            if self.recorder.enabled() {
                self.recorder.instant(
                    wd_now,
                    "exec",
                    "watchdog.barrier",
                    Lane::Stage(stage as u32),
                    vec![
                        ("stage", (stage as u64).into()),
                        ("remaining_units", max_remaining.into()),
                    ],
                );
            }
            let suffix = {
                let snapshot = WatchdogSnapshot {
                    stage,
                    num_stages: self.exec.spec.num_stages(),
                    now: wd_now,
                    stage_start,
                    budget_secs: budget.unwrap_or(f64::INFINITY),
                    units,
                    max_remaining_units: max_remaining,
                    unit_obs: unit_obs_vec(&round.unit_obs),
                    cost_to_date: self.cm.total_cost(wd_now),
                    preemptions: self.total_preemptions,
                    instances: self.cm.ready_count(),
                    instance_seconds: self.cm.held_instance_seconds(wd_now),
                    survivors: self.live.len(),
                    capacity_events: self.cm.capacity_events(),
                    home_zone: self.cm.home_zone(),
                    num_zones: self.cm.num_zones(),
                    plan: &self.plan,
                };
                hook.at_watchdog(&snapshot)
            };
            if let Some(suffix) = suffix {
                let remaining_stages = self.exec.spec.num_stages() - stage;
                if suffix.len() != remaining_stages {
                    return Err(RbError::InvalidPlan(format!(
                        "watchdog hook returned {} stage allocations; \
                         {remaining_stages} stages remain (current included)",
                        suffix.len()
                    )));
                }
                let mut next = self.plan.clone();
                for (j, &gpus) in suffix.iter().enumerate() {
                    next.set_gpus(stage + j, gpus);
                }
                next.validate(&self.exec.spec)?;
                self.plan = next;
            }
            self.now = wd_now;
            // Every live trial is paused and checkpointed, so a market
            // switch drains nothing that cannot restore; the re-scale
            // below provisions on the new market.
            self.apply_pending_switch(hook, stage)?;
            setup = self.exec.scale_and_place(
                &self.plan,
                stage,
                &self.live,
                self.gpg,
                &mut self.cm,
                &mut self.pc,
                &mut self.now,
                &mut self.trace,
                &self.recorder,
            )?;
            stage_migrations += setup.migrations;
            self.total_migrations += setup.migrations;
            stage_shortfall = stage_shortfall.max(setup.capacity_shortfall);
            self.total_retries += setup.retries;
            let residual: BTreeMap<TrialId, u64> = self
                .live
                .iter()
                .map(|&t| (t, round.remaining.get(&t).copied().unwrap_or(0)))
                .collect();
            let resumed = self.exec.train_round(
                stage,
                &residual,
                &mut setup,
                &self.live,
                &mut self.trials,
                &mut self.cm,
                &self.store,
                &mut self.trace,
                &self.recorder,
                self.now,
                true,
                None,
                &mut self.total_preemptions,
            )?;
            stage_end = resumed.stage_end;
            self.total_retries += resumed.retries;
            self.checkpoint_fallbacks += resumed.fallbacks;
            merge_unit_obs(&mut round.unit_obs, resumed.unit_obs);
        }
        // Idle spot nodes reclaimed before the barrier stop billing at
        // their interruption instant and leave the cluster.
        for node in setup.cluster.nodes().to_vec() {
            if self
                .cm
                .preemption_time(node)
                .is_some_and(|t| t <= stage_end)
            {
                let _ = self.cm.preempt_node(node);
                setup.cluster.remove(node);
            }
        }
        self.now = stage_end + SimDuration::from_secs_f64(self.exec.options.sync_overhead_secs);
        emit(
            &mut self.trace,
            &self.recorder,
            TraceEvent::Barrier {
                stage,
                at: self.now,
            },
        );
        if self.recorder.enabled() {
            self.recorder.gauge(
                self.now,
                "exec",
                "cost_to_date_usd",
                Lane::Cloud,
                self.cm.total_cost(self.now).as_dollars(),
            );
            self.recorder.gauge(
                self.now,
                "exec",
                "instances_ready",
                Lane::Cloud,
                self.cm.ready_count() as f64,
            );
        }

        // --- Synchronization barrier: rank, promote, terminate -------------
        let results: Vec<(TrialId, f64)> = self
            .live
            .iter()
            .map(|&t| {
                let acc = self.trials[&t]
                    .trial
                    .latest_accuracy()
                    .expect("trained trials have metrics");
                (t, acc)
            })
            .collect();
        let keep = self
            .exec
            .spec
            .get_stage(stage + 1)
            .map(|(t, _)| t as usize)
            .unwrap_or(0);
        let survivors = select_survivors(&results, keep.max(1).min(self.live.len()));
        let is_last = stage + 1 == self.exec.spec.num_stages();
        for &tid in &self.live {
            let rt = self.trials.get_mut(&tid).expect("live trial exists");
            if is_last || !survivors.contains(&tid) {
                // Completed survivors and terminated losers both stop.
                if is_last && survivors.contains(&tid) {
                    rt.trial.complete()?;
                } else {
                    rt.trial.terminate()?;
                    self.store.evict(tid);
                }
            } else {
                // A watchdog barrier may have left the trial paused
                // already (zero residual units); its checkpoint is
                // fresh either way.
                if rt.trial.status() == TrialStatus::Running {
                    rt.trial.pause()?;
                }
                self.store.save(&rt.trial, &self.exec.task.arch);
                self.pc.confirm(tid);
            }
        }
        self.stages.push(StageRecord {
            stage,
            train_start,
            sync_end: self.now,
            trials: stage_trials,
            gpus_per_trial: setup.allocations.values().next().copied().unwrap_or(1),
            instances: setup.needed as u32,
            migrations: stage_migrations,
        });
        if self.recorder.enabled() {
            // The stage span closes with the full StageRecord payload,
            // so a replay can rebuild the per-stage timeline from the
            // trace alone.
            self.recorder.span_end(
                self.now,
                "exec",
                "stage",
                Lane::Stage(stage as u32),
                self.spans.close(),
                vec![
                    ("stage", (stage as u64).into()),
                    ("train_start_ms", train_start.as_millis().into()),
                    ("trials", stage_trials.into()),
                    (
                        "gpus_per_trial",
                        setup
                            .allocations
                            .values()
                            .next()
                            .copied()
                            .unwrap_or(1)
                            .into(),
                    ),
                    ("instances", (setup.needed as u64).into()),
                    ("migrations", stage_migrations.into()),
                ],
            );
            // Stage barriers are the stream's durability points.
            self.recorder.flush();
        }
        if stage_shortfall > 0 {
            self.degraded_stages += 1;
        }
        self.live = survivors;

        // --- Barrier hook: observe, optionally re-plan the suffix ----------
        // Every survivor is paused with a fresh checkpoint and the
        // placement confirmed, so a plan splice here is transition-safe:
        // the next stage's scaling/placement machinery absorbs it.
        if stage + 1 < self.exec.spec.num_stages() {
            let snapshot = BarrierSnapshot {
                stage,
                num_stages: self.exec.spec.num_stages(),
                now: self.now,
                stage_span: self.now - stage_start,
                cost_to_date: self.cm.total_cost(self.now),
                preemptions: self.total_preemptions,
                instances: self.cm.ready_count(),
                survivors: self.live.len(),
                gpus_per_trial: setup.allocations.values().next().copied().unwrap_or(1),
                unit_obs: unit_obs_vec(&round.unit_obs),
                instance_seconds: self.cm.held_instance_seconds(self.now),
                capacity_shortfall: stage_shortfall as u32,
                capacity_events: self.cm.capacity_events(),
                home_zone: self.cm.home_zone(),
                num_zones: self.cm.num_zones(),
                plan: &self.plan,
            };
            if let Some(suffix) = hook.at_barrier(&snapshot) {
                let remaining = self.exec.spec.num_stages() - (stage + 1);
                if suffix.len() != remaining {
                    return Err(RbError::InvalidPlan(format!(
                        "barrier hook returned {} stage allocations; {remaining} stages remain",
                        suffix.len()
                    )));
                }
                let mut next = self.plan.clone();
                for (j, &gpus) in suffix.iter().enumerate() {
                    next.set_gpus(stage + 1 + j, gpus);
                }
                next.validate(&self.exec.spec)?;
                self.plan = next;
            }
            // The switch executes after the suffix splice so the next
            // stage's scale-up — which absorbs both — provisions on the
            // new market in one pass.
            self.apply_pending_switch(hook, stage)?;
        }

        self.stage += 1;
        if self.is_finished() {
            Ok(StepOutcome::Finished { at: self.now })
        } else {
            Ok(StepOutcome::Barrier {
                stage,
                at: self.now,
            })
        }
    }

    /// Polls the hook for an executed market/zone switch and drains the
    /// fleet through [`ClusterManager::switch_market`]. Called only at
    /// transition-safe points — a completed barrier or a watchdog
    /// splice — where every survivor holds a fresh checkpoint, so
    /// terminating the old market's capacity strands nothing. `None`
    /// and empty directives are no-ops (no draws, no events), keeping
    /// passive hooks bit-identical.
    fn apply_pending_switch(&mut self, hook: &mut dyn BarrierHook, stage: usize) -> Result<()> {
        let Some(directive) = hook.pending_switch() else {
            return Ok(());
        };
        if directive.is_empty() {
            return Ok(());
        }
        let outcome = self.cm.switch_market(&directive, self.now)?;
        self.recorder.counter_add("exec", "market_switches", 1);
        if self.recorder.enabled() {
            let mut args: Vec<(&'static str, Value)> = vec![
                ("stage", (stage as u64).into()),
                ("drained", (outcome.drained as u64).into()),
                ("parked", (outcome.parked as u64).into()),
                ("cancelled", (outcome.cancelled as u64).into()),
            ];
            if let Some(tier) = directive.market {
                let name = match tier {
                    PricingTier::OnDemand => "on_demand",
                    PricingTier::Spot => "spot",
                };
                args.push(("market", name.to_string().into()));
            }
            if let Some(zone) = directive.zone {
                args.push(("zone", u64::from(zone).into()));
            }
            // The switch is instantaneous in virtual time (draining
            // happens at the barrier the fleet already reached), so the
            // span opens and closes at `now`; it exists to carry the
            // outcome args on the cloud lane.
            let (span, parent) = self.spans.open();
            self.recorder.span_start(
                self.now,
                "exec",
                "market.switch",
                Lane::Cloud,
                span,
                parent,
                args,
            );
            self.recorder.span_end(
                self.now,
                "exec",
                "market.switch",
                Lane::Cloud,
                self.spans.close(),
                Vec::new(),
            );
        }
        Ok(())
    }

    /// Consumes the core after the final barrier and assembles the
    /// [`ExecutionReport`]: terminates remaining capacity, settles
    /// billing, and emits the teardown counters/spans. Byte-identical to
    /// the teardown the legacy `run` loop performed inline.
    pub fn finish(mut self) -> Result<ExecutionReport> {
        if !self.is_finished() {
            return Err(RbError::Execution(format!(
                "executor core finished at stage {}/{}",
                self.stage,
                self.exec.spec.num_stages()
            )));
        }
        // --- Teardown and report ------------------------------------------------
        let jct = self.now - self.t0;
        let utilization = self.cm.utilization(self.now);
        let compute_cost;
        let data_cost;
        {
            self.cm.terminate_all(self.now);
            compute_cost = self.cm.compute_cost(self.now);
            data_cost = self.cm.data_cost();
        }
        let faults_injected = self.cm.fault_counts().total() + self.store.corruptions_injected();
        let best_trial = *self
            .live
            .first()
            .ok_or_else(|| RbError::Execution("no surviving trial at job end".into()))?;
        let best_config = self.trials[&best_trial].trial.config.clone();
        let best_accuracy = self.trials[&best_trial]
            .trial
            .latest_accuracy()
            .expect("winner has metrics");
        let batch = f64::from(self.exec.physics.scaling.batch_size());
        let trial_throughput: BTreeMap<TrialId, f64> = self
            .trials
            .iter()
            .filter(|(_, rt)| rt.busy_secs > 0.0 && rt.units_done > 0)
            .map(|(&t, rt)| {
                let samples =
                    rt.units_done as f64 * self.exec.physics.steps_per_iter as f64 * batch;
                (t, samples / rt.busy_secs)
            })
            .collect();
        if self.recorder.enabled() {
            // The billing meter's spend curve: cumulative compute cost at
            // each instance release, on the cloud lane.
            for (t, c) in self.cm.cost_timeline(self.now) {
                self.recorder
                    .gauge(t, "cloud", "spend_usd", Lane::Cloud, c.as_dollars());
            }
            // Result-carrying events: everything a replay needs to
            // rebuild the report that only the executor knows. Costs
            // travel as integer micros (exact), f64 metrics rely on the
            // exporter's shortest-roundtrip formatting.
            for (&t, &sps) in &trial_throughput {
                self.recorder.instant(
                    self.now,
                    "exec",
                    "trial.throughput",
                    Lane::Trial(t.raw()),
                    vec![("sps", sps.into())],
                );
            }
            for (name, value) in best_config.iter() {
                let mut fields: Vec<(&'static str, Value)> = vec![("param", name.clone().into())];
                match value {
                    rb_hpo::ConfigValue::Float(v) => fields.push(("float", (*v).into())),
                    rb_hpo::ConfigValue::Int(v) => fields.push(("int", (*v).into())),
                    rb_hpo::ConfigValue::Choice(s) => fields.push(("choice", s.clone().into())),
                }
                self.recorder
                    .instant(self.now, "exec", "run.best_param", Lane::Global, fields);
            }
            let mut result: Vec<(&'static str, Value)> = vec![
                ("compute_cost_micros", compute_cost.as_micros().into()),
                ("data_cost_micros", data_cost.as_micros().into()),
                ("best_trial", best_trial.raw().into()),
                ("best_accuracy", best_accuracy.into()),
                ("migrations", u64::from(self.total_migrations).into()),
                ("preemptions", u64::from(self.total_preemptions).into()),
                (
                    "instances_provisioned",
                    (self.cm.instances_provisioned() as u64).into(),
                ),
                ("faults_injected", faults_injected.into()),
                ("provision_retries", self.total_retries.into()),
                ("checkpoint_fallbacks", self.checkpoint_fallbacks.into()),
                ("degraded_stages", u64::from(self.degraded_stages).into()),
            ];
            if let Some(u) = utilization {
                result.push(("utilization", u.into()));
            }
            self.recorder.span_end(
                self.now,
                "exec",
                "run",
                Lane::Global,
                self.spans.close(),
                result,
            );
            self.recorder.flush();
        }
        self.recorder
            .counter_add("exec", "migrations", u64::from(self.total_migrations));
        self.recorder
            .counter_add("exec", "preemptions", u64::from(self.total_preemptions));
        self.recorder.counter_add(
            "exec",
            "instances_provisioned",
            self.cm.instances_provisioned() as u64,
        );
        if faults_injected > 0 {
            // Recovery rollup, emitted only when the injector actually
            // fired so calm traces stay byte-stable.
            self.recorder
                .counter_add("exec", "faults_injected", faults_injected);
            self.recorder
                .counter_add("exec", "provision_retries", self.total_retries);
            self.recorder
                .counter_add("exec", "checkpoint_fallbacks", self.checkpoint_fallbacks);
            self.recorder
                .counter_add("exec", "degraded_stages", u64::from(self.degraded_stages));
        }
        #[cfg(debug_assertions)]
        if let Err(violation) = self.trace.check_invariants() {
            panic!("execution trace ordering contract violated: {violation}");
        }
        Ok(ExecutionReport {
            jct,
            compute_cost,
            data_cost,
            best_trial,
            best_config,
            best_accuracy,
            stages: self.stages,
            migrations: self.total_migrations,
            preemptions: self.total_preemptions,
            instances_provisioned: self.cm.instances_provisioned(),
            utilization,
            trial_throughput,
            faults_injected,
            provision_retries: self.total_retries,
            checkpoint_fallbacks: self.checkpoint_fallbacks,
            degraded_stages: self.degraded_stages,
            trace: self.trace,
        })
    }
}

impl Executor {
    /// Scales the cluster to the plan's allocation for `stage` and places
    /// (or migrates) every live trial's workers. One stage normally runs
    /// this once; a stage split by the watchdog runs it again for the
    /// residual round, absorbing whatever the hook spliced in.
    #[allow(clippy::too_many_arguments)]
    fn scale_and_place(
        &self,
        plan: &AllocationPlan,
        stage: usize,
        live: &[TrialId],
        gpg: u32,
        cm: &mut ClusterManager,
        pc: &mut PlacementController,
        now: &mut SimTime,
        trace: &mut ExecutionTrace,
        recorder: &RecorderHandle,
    ) -> Result<StageSetup> {
        let opts = &self.options;
        // The scheduler decides; the rest of the pass carries it out.
        let mut schedule = crate::scheduler::schedule_stage(&self.spec, plan, stage, live, gpg)?;
        let mut needed = schedule.target_instances as usize;

        // --- Cluster scaling ------------------------------------------------
        let current = cm.ready_count();
        let mut retries = 0u64;
        let mut capacity_shortfall = 0usize;
        let mut degraded_acquired = 0usize;
        if needed > current {
            // The resilient path engages only under an active fault plan;
            // on a clean provider the legacy fail-fast request keeps the
            // run bit-identical.
            let policy = opts.retry.as_ref().filter(|_| opts.faults.is_active());
            if let Some(policy) = policy {
                let out = cm.request_nodes_resilient(needed - current, *now, policy)?;
                retries = out.retries;
                if out.shortfall > 0 {
                    // Capacity stayed short after the retry budget: run
                    // the stage degraded on what we actually hold instead
                    // of aborting. The controller sees the shortfall at
                    // the barrier and can re-plan the remaining stages.
                    let available = current + out.acquired;
                    capacity_shortfall = needed - available;
                    degraded_acquired = out.acquired;
                    schedule = self.degrade_schedule(plan, stage, live, gpg, available)?;
                    needed = schedule.target_instances as usize;
                    recorder.counter_add("exec", "capacity_shortfall", capacity_shortfall as u64);
                    if recorder.enabled() {
                        recorder.instant(
                            *now,
                            "exec",
                            "capacity.degraded",
                            Lane::Stage(stage as u32),
                            vec![
                                ("stage", (stage as u64).into()),
                                ("shortfall", (capacity_shortfall as u64).into()),
                                ("instances", (needed as u64).into()),
                            ],
                        );
                    }
                }
            } else {
                cm.request_nodes(needed - current, *now)?;
            }
        }
        let waves = schedule.waves;
        let mut cluster = ClusterState::new(cm.nodes(), gpg);
        let mut moved: Vec<TrialId> = Vec::new();
        if needed < current && capacity_shortfall == 0 {
            let k = current - needed;
            if opts.use_placement_controller && !pc.plan().is_empty() {
                // Bin-pack survivors off the victim nodes, then release.
                let allocations: BTreeMap<TrialId, u32> = live
                    .iter()
                    .map(|&t| (t, pc.plan().assigned_gpus(t).max(1)))
                    .filter(|&(t, _)| pc.plan().get(t).is_some())
                    .collect();
                pc.update(&allocations, &cluster)?;
                match pc.plan_scale_down(&cluster, k) {
                    Ok((freed, relocated)) => {
                        moved.extend(relocated);
                        for nid in &freed {
                            cluster.remove(*nid);
                            emit(
                                trace,
                                recorder,
                                TraceEvent::NodeDown {
                                    node: *nid,
                                    at: *now,
                                    preempted: false,
                                },
                            );
                        }
                        cm.terminate_nodes(&freed, *now)?;
                    }
                    Err(_) => {
                        // Bin-packing could not relocate (e.g. trials
                        // spanning nodes). Preservation is best-effort
                        // (§4.4): fall back to a full re-placement —
                        // everything checkpoints at the barrier anyway.
                        *pc = PlacementController::new();
                        let nodes = cm.nodes();
                        let victims: Vec<_> = nodes[nodes.len() - k..].to_vec();
                        for nid in &victims {
                            cluster.remove(*nid);
                            emit(
                                trace,
                                recorder,
                                TraceEvent::NodeDown {
                                    node: *nid,
                                    at: *now,
                                    preempted: false,
                                },
                            );
                        }
                        cm.terminate_nodes(&victims, *now)?;
                        moved.extend(live.iter().copied());
                    }
                }
            } else {
                // Scatter baseline: drop the emptiest-by-id tail nodes.
                let nodes = cm.nodes();
                let victims: Vec<_> = nodes[nodes.len() - k..].to_vec();
                for nid in &victims {
                    cluster.remove(*nid);
                    emit(
                        trace,
                        recorder,
                        TraceEvent::NodeDown {
                            node: *nid,
                            at: *now,
                            preempted: false,
                        },
                    );
                }
                cm.terminate_nodes(&victims, *now)?;
            }
        }
        if needed > current || degraded_acquired > 0 {
            // Barrier: wait for the whole new cluster (§4.2 semantics).
            if let Some(ready) = cm.pending_ready_time() {
                *now = (*now).max(ready);
            }
            for nid in cm.absorb_ready(*now) {
                cluster.add(nid);
                emit(
                    trace,
                    recorder,
                    TraceEvent::NodeUp {
                        node: nid,
                        at: *now,
                    },
                );
            }
        }

        // --- Placement ------------------------------------------------------
        // Wave-scheduled stages run single-GPU trials over the slots;
        // a 1-GPU worker is trivially packed, so the controller is
        // bypassed and trials rotate churn-free.
        let placement: PlacementPlan;
        let allocations = schedule.allocations.clone();
        if waves {
            let nodes = cluster.nodes().to_vec();
            let mut p = PlacementPlan::new();
            for (i, &t) in live.iter().enumerate() {
                let node = nodes[(i % schedule.slots as usize) % nodes.len()];
                p.assign(t, vec![rb_placement::Placement { node, gpus: 1 }]);
            }
            placement = p;
        } else if opts.use_placement_controller {
            let diff = pc.update(&allocations, &cluster)?;
            moved.extend(diff.moved.iter().copied());
            placement = pc.plan().clone();
        } else {
            placement = scatter_placement(&allocations, &cluster)
                .ok_or_else(|| RbError::Placement("scatter baseline: cluster too small".into()))?;
        }
        moved.sort();
        moved.dedup();
        let migrations = moved.len() as u32;
        for &t in &moved {
            emit(
                trace,
                recorder,
                TraceEvent::Migration { trial: t, at: *now },
            );
        }
        Ok(StageSetup {
            cluster,
            placement,
            allocations,
            moved,
            slots: schedule.slots as usize,
            needed,
            migrations,
            retries,
            capacity_shortfall,
        })
    }

    /// Shrinks `stage`'s allocation until it fits on `available`
    /// instances: the largest valid GPU count whose fragmentation-aware
    /// instance demand is within what the cluster actually holds.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Execution`] when no allocation fits (no
    /// capacity at all after retries).
    fn degrade_schedule(
        &self,
        plan: &AllocationPlan,
        stage: usize,
        live: &[TrialId],
        gpg: u32,
        available: usize,
    ) -> Result<crate::scheduler::StageSchedule> {
        let trials = live.len() as u32;
        let mut g = (available as u32 * gpg).min(plan.gpus(stage));
        loop {
            if g == 0 {
                return Err(RbError::Execution(format!(
                    "stage {stage}: no capacity available after provisioning retries"
                )));
            }
            if g > trials {
                // Keep trial allocations even: round down to a multiple.
                g -= g % trials;
            }
            let mut degraded = plan.clone();
            degraded.set_gpus(stage, g);
            if degraded.validate(&self.spec).is_ok() {
                let s = crate::scheduler::schedule_stage(&self.spec, &degraded, stage, live, gpg)?;
                if (s.target_instances as usize) <= available {
                    return Ok(s);
                }
            }
            g -= 1;
        }
    }

    /// Runs every live trial for its share of the stage's work units and
    /// returns when the last segment ends. With `watchdog_deadline` set,
    /// a trial whose attempt would run past the deadline is stopped at
    /// the end of the unit in flight (a spot preemption striking earlier
    /// wins and is handled normally); its residual unit count is
    /// reported in [`RoundOutcome::remaining`]. The deadline check
    /// consumes no noise samples, so an armed watchdog that never fires
    /// leaves the round bit-identical to an unarmed one.
    #[allow(clippy::too_many_arguments)]
    fn train_round(
        &self,
        stage: usize,
        units_for: &BTreeMap<TrialId, u64>,
        setup: &mut StageSetup,
        live: &[TrialId],
        trials: &mut BTreeMap<TrialId, RunningTrial>,
        cm: &mut ClusterManager,
        store: &CheckpointStore,
        trace: &mut ExecutionTrace,
        recorder: &RecorderHandle,
        train_start: SimTime,
        force_fetch: bool,
        watchdog_deadline: Option<SimTime>,
        total_preemptions: &mut u32,
    ) -> Result<RoundOutcome> {
        let opts = &self.options;
        let gpg = self.cloud.gpus_per_instance().max(1);
        let slots = setup.slots;
        let mut slot_free: Vec<SimTime> = vec![train_start; slots.max(1)];
        let mut outcome = RoundOutcome {
            stage_end: train_start,
            remaining: BTreeMap::new(),
            unit_obs: BTreeMap::new(),
            retries: 0,
            fallbacks: 0,
        };
        // Verified fetches engage only when the store can actually do
        // something with them (corruption armed or >1 generation kept);
        // otherwise the legacy unchecked fetch keeps the run
        // bit-identical.
        let verify_fetch =
            opts.faults.checkpoint_corruption_prob > 0.0 || opts.checkpoint_retention > 1;
        let retry_policy = opts.retry.as_ref().filter(|_| opts.faults.is_active());
        let checkpoint_secs = |trial: TrialId, store: &CheckpointStore| -> f64 {
            store
                .get(trial)
                .map(|ck| ck.total_bytes() as f64 / (opts.checkpoint_bw_gbps * 1e9))
                .unwrap_or(0.0)
        };
        // Spot interruption instants of the round's nodes, captured
        // up-front so that colocated trials observe the same event
        // even after the first of them reclaims the node.
        let node_preempt: BTreeMap<rb_core::NodeId, SimTime> = setup
            .cluster
            .nodes()
            .iter()
            .filter_map(|&n| cm.preemption_time(n).map(|t| (n, t)))
            .collect();
        for (wave_idx, &tid) in live.iter().enumerate() {
            let units = units_for.get(&tid).copied().unwrap_or(0);
            if units == 0 {
                // Nothing owed (residual round after a full first round).
                continue;
            }
            let slot = wave_idx % slots.max(1);
            let mut start = slot_free[slot];
            if let Some(wd) = watchdog_deadline {
                if start >= wd {
                    // A cut earlier in this wave slot pushed the start
                    // past the deadline: don't even begin the attempt.
                    outcome.remaining.insert(tid, units);
                    continue;
                }
            }
            let rt = trials.get_mut(&tid).expect("live trial exists");
            if rt.trial.status() != TrialStatus::Running {
                rt.trial.start()?;
            }
            let gpus = setup.allocations[&tid];
            // Without placement control, even single-GPU workers lose
            // data locality and scheduler affinity (Table 1's 1-GPU
            // rows differ); with it, quality comes from the plan.
            let quality = if opts.use_placement_controller {
                setup
                    .placement
                    .quality(tid, gpg)
                    .unwrap_or(PlacementQuality::Packed)
            } else {
                PlacementQuality::Scattered
            };
            let mut hosting: Vec<rb_core::NodeId> = setup
                .placement
                .get(tid)
                .map(|cs| cs.iter().map(|p| p.node).collect())
                .unwrap_or_default();
            // A degraded node slows the whole gang: data-parallel steps
            // synchronize every iteration, so the slowest host sets the
            // pace. Healthy clusters report 1.0 and the multiply is
            // exact — bit-identical to a build without the chaos layer.
            let slowdown = hosting
                .iter()
                .map(|n| cm.node_slowdown(*n))
                .fold(1.0, f64::max);
            let unit_mean = self.physics.unit_mean_secs(gpus, quality) * slowdown;
            let dist = if self.physics.unit_noise_frac > 0.0 {
                Distribution::Normal {
                    mean: unit_mean,
                    std: self.physics.unit_noise_frac * unit_mean,
                    floor: 0.05 * unit_mean,
                }
            } else {
                Distribution::Constant(unit_mean)
            };
            let mut needs_fetch = force_fetch || stage > 0 || setup.moved.contains(&tid);
            let obs_key = (gpus, quality == PlacementQuality::Packed);
            // Attempt loop: a spot interruption of any hosting node
            // loses the attempt's progress (checkpoints happen only at
            // stage barriers); the trial restarts on a replacement.
            let finish = loop {
                let mut work = self.physics.train_startup_secs;
                if needs_fetch {
                    if verify_fetch && store.get(tid).is_some() {
                        // Hardened fetch: verify generations newest-first,
                        // fall back past corrupted ones, and re-run the
                        // iterations the older generation is missing.
                        // Total loss (every retained generation corrupt)
                        // aborts the unhardened store but cold-restarts
                        // the trial when retention is armed: nothing to
                        // transfer, every recorded iteration redone.
                        let vf = match store.fetch_verified(tid) {
                            Ok(vf) => vf,
                            Err(_) if opts.checkpoint_retention > 1 => {
                                let latest = store.get(tid).expect("presence checked above");
                                VerifiedFetch {
                                    bytes: 0,
                                    redo_iters: latest.iters_done,
                                    fallbacks: store.retention() as u64,
                                }
                            }
                            Err(e) => return Err(e),
                        };
                        work += vf.bytes as f64 / (opts.checkpoint_bw_gbps * 1e9);
                        if vf.fallbacks > 0 {
                            outcome.fallbacks += 1;
                            work += vf.redo_iters as f64 * unit_mean;
                            recorder.counter_add("train", "checkpoint_fallbacks", 1);
                            if recorder.enabled() {
                                recorder.instant(
                                    start,
                                    "train",
                                    "checkpoint.fallback",
                                    Lane::Trial(tid.raw()),
                                    vec![
                                        ("trial", tid.raw().into()),
                                        ("skipped_generations", vf.fallbacks.into()),
                                        ("redo_iters", vf.redo_iters.into()),
                                    ],
                                );
                            }
                        }
                    } else {
                        work += checkpoint_secs(tid, store);
                    }
                }
                let base = work;
                let mut boundaries: Vec<f64> = Vec::new();
                for _ in 0..units {
                    work += dist.sample(&mut rt.rng);
                    if watchdog_deadline.is_some() {
                        boundaries.push(work);
                    }
                }
                let end = start + SimDuration::from_secs_f64(work);
                let preempt = hosting
                    .iter()
                    .filter_map(|n| {
                        node_preempt
                            .get(n)
                            .copied()
                            .or_else(|| cm.preemption_time(*n))
                    })
                    .filter(|&t| t > start && t < end)
                    .min();
                // Watchdog cut candidate: the end of the unit in flight
                // at the deadline. An attempt finishing exactly at its
                // last boundary is a normal completion, not a cut.
                let wd_cut: Option<(u64, f64)> = watchdog_deadline.and_then(|wd| {
                    if end <= wd {
                        return None;
                    }
                    let (k, cut_work) = if wd <= start + SimDuration::from_secs_f64(base) {
                        (0u64, base)
                    } else {
                        let i = boundaries
                            .iter()
                            .position(|&b| start + SimDuration::from_secs_f64(b) >= wd)
                            .expect("attempt runs past the deadline");
                        (i as u64 + 1, boundaries[i])
                    };
                    (k < units).then_some((k, cut_work))
                });
                let preempt = preempt.filter(|&p| {
                    wd_cut.map_or(true, |(_, w)| p < start + SimDuration::from_secs_f64(w))
                });
                let Some(cut) = preempt else {
                    if let Some((k, cut_work)) = wd_cut {
                        // Stop at the boundary: bank the completed units,
                        // bill the work actually done, leave the rest to
                        // the post-watchdog residual round.
                        let done = SimDuration::from_secs_f64(cut_work);
                        let t = start + done;
                        rt.busy_secs += cut_work;
                        cm.record_usage(gpus, done);
                        emit(
                            trace,
                            recorder,
                            TraceEvent::TrialSegment {
                                trial: tid,
                                stage,
                                start,
                                end: t,
                                gpus,
                            },
                        );
                        if k > 0 {
                            let e = outcome.unit_obs.entry(obs_key).or_insert((0.0, 0));
                            e.0 += cut_work - base;
                            e.1 += k;
                        }
                        rt.units_done += k;
                        for _ in 0..k {
                            rt.trial.advance(&self.task, 1)?;
                        }
                        outcome.remaining.insert(tid, units - k);
                        break t;
                    }
                    rt.busy_secs += work;
                    cm.record_usage(gpus, SimDuration::from_secs_f64(work));
                    emit(
                        trace,
                        recorder,
                        TraceEvent::TrialSegment {
                            trial: tid,
                            stage,
                            start,
                            end,
                            gpus,
                        },
                    );
                    let e = outcome.unit_obs.entry(obs_key).or_insert((0.0, 0));
                    e.0 += work - base;
                    e.1 += units;
                    rt.units_done += units;
                    for _ in 0..units {
                        rt.trial.advance(&self.task, 1)?;
                    }
                    break end;
                };
                // Pay for the lost work, reclaim the dead node(s), and
                // bring up replacements.
                *total_preemptions += 1;
                let lost = cut - start;
                rt.busy_secs += lost.as_secs_f64();
                cm.record_usage(gpus, lost);
                emit(
                    trace,
                    recorder,
                    TraceEvent::TrialSegment {
                        trial: tid,
                        stage,
                        start,
                        end: cut,
                        gpus,
                    },
                );
                let dead: Vec<rb_core::NodeId> = hosting
                    .iter()
                    .copied()
                    .filter(|n| {
                        node_preempt
                            .get(n)
                            .copied()
                            .or_else(|| cm.preemption_time(*n))
                            .is_some_and(|t| t <= cut)
                    })
                    .collect();
                for n in &dead {
                    // Colocated trials race to reclaim; losing is fine.
                    if cm.preempt_node(*n).is_ok() {
                        emit(
                            trace,
                            recorder,
                            TraceEvent::NodeDown {
                                node: *n,
                                at: cut,
                                preempted: true,
                            },
                        );
                    }
                    setup.cluster.remove(*n);
                    hosting.retain(|h| h != n);
                }
                if let Some(policy) = retry_policy {
                    let out = cm.request_nodes_resilient(dead.len(), cut, policy)?;
                    outcome.retries += out.retries;
                } else {
                    cm.request_nodes(dead.len(), cut)?;
                }
                let ready = cm.pending_ready_time().unwrap_or(cut);
                for n in cm.absorb_ready(ready) {
                    setup.cluster.add(n);
                    hosting.push(n);
                    emit(trace, recorder, TraceEvent::NodeUp { node: n, at: ready });
                }
                start = cut.max(ready);
                needs_fetch = true;
            };
            slot_free[slot] = finish;
            outcome.stage_end = outcome.stage_end.max(finish);
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_8XLARGE;
    use rb_cloud::CloudPricing;
    use rb_hpo::{Dim, SearchSpace};
    use rb_scaling::AnalyticScaling;
    use rb_train::task::resnet101_cifar10;
    use std::sync::Arc;

    fn cloud() -> CloudProfile {
        CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay(SimDuration::from_secs(15))
            .with_init_latency(SimDuration::from_secs(15))
    }

    fn physics(task: &TaskModel, batch: u32) -> ModelProfile {
        let scaling = Arc::new(AnalyticScaling::for_arch(&task.arch, batch, 4));
        let mut p =
            ModelProfile::from_scaling(task.name, scaling, task.steps_per_iter(batch), 2.0, 0.02);
        p.train_startup_secs = 2.0;
        p
    }

    fn configs(n: usize, seed: u64) -> Vec<Config> {
        let space = SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
            .add("weight_decay", Dim::LogUniform { lo: 1e-5, hi: 1e-2 })
            .build()
            .unwrap();
        space.sample_n(n, &mut Prng::seed_from_u64(seed))
    }

    fn small_spec() -> ExperimentSpec {
        ExperimentSpec::from_stages(&[(8, 1), (4, 2), (2, 4), (1, 8)]).unwrap()
    }

    #[test]
    fn end_to_end_run_produces_consistent_report() {
        let task = resnet101_cifar10();
        let exec = Executor::new(
            small_spec(),
            AllocationPlan::new(vec![8, 8, 8, 8]),
            task.clone(),
            physics(&task, 1024),
            cloud(),
        )
        .unwrap();
        let report = exec.run(&configs(8, 1)).unwrap();
        assert_eq!(report.stages.len(), 4);
        assert!(report.jct > SimDuration::ZERO);
        assert!(report.compute_cost > rb_core::Cost::ZERO);
        assert!(report.best_accuracy > 0.1, "better than chance");
        // Stage timeline is monotone.
        for w in report.stages.windows(2) {
            assert!(w[1].train_start >= w[0].sync_end);
        }
        // The winner survived all stages: 1 + 2 + 4 + 8 = 15 units.
        assert!(report.trial_throughput.contains_key(&report.best_trial));
    }

    #[test]
    fn execution_is_deterministic_per_seed() {
        let task = resnet101_cifar10();
        let mk = || {
            Executor::new(
                small_spec(),
                AllocationPlan::new(vec![8, 8, 4, 4]),
                task.clone(),
                physics(&task, 1024),
                cloud(),
            )
            .unwrap()
            .with_options(ExecOptions {
                seed: 42,
                ..ExecOptions::default()
            })
        };
        let a = mk().run(&configs(8, 1)).unwrap();
        let b = mk().run(&configs(8, 1)).unwrap();
        assert_eq!(a.jct, b.jct);
        assert_eq!(a.compute_cost, b.compute_cost);
        assert_eq!(a.best_trial, b.best_trial);
        assert_eq!(a.best_accuracy, b.best_accuracy);
    }

    #[test]
    fn different_seeds_differ() {
        let task = resnet101_cifar10();
        let mk = |seed| {
            Executor::new(
                small_spec(),
                AllocationPlan::new(vec![8, 8, 4, 4]),
                task.clone(),
                physics(&task, 1024),
                cloud(),
            )
            .unwrap()
            .with_options(ExecOptions {
                seed,
                ..ExecOptions::default()
            })
        };
        let a = mk(1).run(&configs(8, 1)).unwrap();
        let b = mk(2).run(&configs(8, 1)).unwrap();
        assert_ne!(a.jct, b.jct);
    }

    #[test]
    fn elastic_plan_is_cheaper_than_static_in_execution() {
        // The headline end-to-end effect (Table 2), at miniature scale:
        // shrinking with the trial count beats holding 2 instances.
        let task = resnet101_cifar10();
        let run = |plan: Vec<u32>| {
            Executor::new(
                small_spec(),
                AllocationPlan::new(plan),
                task.clone(),
                physics(&task, 1024),
                cloud(),
            )
            .unwrap()
            .run(&configs(8, 1))
            .unwrap()
        };
        let static_report = run(vec![8, 8, 8, 8]);
        let elastic_report = run(vec![8, 8, 4, 4]);
        assert!(
            elastic_report.total_cost() < static_report.total_cost(),
            "elastic {} vs static {}",
            elastic_report.total_cost(),
            static_report.total_cost()
        );
    }

    #[test]
    fn scale_down_releases_instances_and_migrates() {
        let task = resnet101_cifar10();
        let exec = Executor::new(
            small_spec(),
            AllocationPlan::new(vec![8, 4, 4, 4]),
            task.clone(),
            physics(&task, 1024),
            cloud(),
        )
        .unwrap();
        let report = exec.run(&configs(8, 1)).unwrap();
        assert_eq!(report.stages[0].instances, 2);
        assert_eq!(report.stages[1].instances, 1);
        assert_eq!(report.instances_provisioned, 2);
    }

    #[test]
    fn waves_run_when_gpus_are_scarce() {
        let task = resnet101_cifar10();
        // 2 GPUs for 8 trials in stage 0: four waves of two.
        let exec = Executor::new(
            small_spec(),
            AllocationPlan::new(vec![2, 2, 2, 2]),
            task.clone(),
            physics(&task, 1024),
            cloud(),
        )
        .unwrap();
        let report = exec.run(&configs(8, 1)).unwrap();
        assert_eq!(report.stages[0].gpus_per_trial, 1);
        // Wave stages take roughly 4× the single-wave duration; just check
        // the run completed with one instance.
        assert_eq!(report.instances_provisioned, 1);
    }

    #[test]
    fn too_few_configs_is_an_error() {
        let task = resnet101_cifar10();
        let exec = Executor::new(
            small_spec(),
            AllocationPlan::new(vec![8, 8, 8, 8]),
            task.clone(),
            physics(&task, 1024),
            cloud(),
        )
        .unwrap();
        assert!(matches!(
            exec.run(&configs(3, 1)),
            Err(RbError::InvalidConfig(_))
        ));
    }

    #[test]
    fn placement_ablation_slows_training() {
        // Table 1's effect end-to-end: scattered workers pay degraded
        // bandwidth, so the same plan takes longer and costs more.
        let task = resnet101_cifar10();
        let run = |use_placement| {
            Executor::new(
                ExperimentSpec::from_stages(&[(4, 2), (2, 4), (1, 8)]).unwrap(),
                AllocationPlan::new(vec![8, 8, 8]),
                task.clone(),
                physics(&task, 1024),
                cloud(),
            )
            .unwrap()
            .with_options(ExecOptions {
                use_placement_controller: use_placement,
                ..ExecOptions::default()
            })
            .run(&configs(4, 1))
            .unwrap()
        };
        let placed = run(true);
        let scattered = run(false);
        assert!(
            scattered.jct > placed.jct,
            "scattered {} !> placed {}",
            scattered.jct,
            placed.jct
        );
        assert!(scattered.mean_throughput().unwrap() < placed.mean_throughput().unwrap());
    }

    #[test]
    fn per_function_billing_charges_less_than_per_instance_with_stragglers() {
        let task = resnet101_cifar10();
        let mut noisy = physics(&task, 1024);
        noisy.unit_noise_frac = 0.6;
        let run = |per_function: bool| {
            let mut c = cloud();
            if per_function {
                c.pricing = c.pricing.with_per_function_billing();
            }
            Executor::new(
                ExperimentSpec::from_stages(&[(8, 2), (4, 4)]).unwrap(),
                AllocationPlan::new(vec![8, 4]),
                task.clone(),
                noisy.clone(),
                c,
            )
            .unwrap()
            .run(&configs(8, 3))
            .unwrap()
        };
        let pi = run(false);
        let pf = run(true);
        assert!(
            pf.compute_cost < pi.compute_cost,
            "per-function {} !< per-instance {}",
            pf.compute_cost,
            pi.compute_cost
        );
    }

    #[test]
    fn accuracy_winner_has_good_learning_rate() {
        // With enough trials, SHA should land near the response surface's
        // optimum.
        let task = resnet101_cifar10();
        let spec = ExperimentSpec::from_stages(&[(16, 2), (8, 4), (4, 8), (1, 16)]).unwrap();
        let exec = Executor::new(
            spec,
            AllocationPlan::new(vec![16, 16, 16, 8]),
            task.clone(),
            physics(&task, 1024),
            cloud(),
        )
        .unwrap();
        let report = exec.run(&configs(16, 7)).unwrap();
        let lr = report.best_config.get_f64("lr").unwrap();
        let dist = (lr / task.lr_opt).log10().abs();
        assert!(
            dist < 1.0,
            "winner's lr {lr} is {dist} decades from optimal"
        );
        assert!(report.best_accuracy > 0.8);
    }

    #[test]
    fn spot_interruptions_are_absorbed_and_counted() {
        let task = resnet101_cifar10();
        // Aggressive reclaim rate so a short job sees several interruptions.
        let run = |rate: f64| {
            let mut c = cloud().with_spot_interruptions(rate);
            c.pricing = c.pricing.with_spot();
            Executor::new(
                small_spec(),
                AllocationPlan::new(vec![8, 8, 4, 4]),
                task.clone(),
                physics(&task, 1024),
                c,
            )
            .unwrap()
            .with_options(ExecOptions {
                seed: 21,
                ..ExecOptions::default()
            })
            .run(&configs(8, 1))
            .unwrap()
        };
        let calm = run(0.0);
        let stormy = run(30.0);
        assert_eq!(calm.preemptions, 0);
        assert!(
            stormy.preemptions > 0,
            "expected interruptions at rate 30/h"
        );
        // Interruptions cost wall-clock time (lost work + re-provisioning).
        assert!(stormy.jct > calm.jct);
        // The tuning outcome is unaffected: learning curves depend only on
        // (config, iterations, seed).
        assert_eq!(stormy.best_trial, calm.best_trial);
        assert_eq!(stormy.best_accuracy, calm.best_accuracy);
    }

    #[test]
    fn spot_execution_is_deterministic() {
        let task = resnet101_cifar10();
        let run = || {
            let mut c = cloud().with_spot_interruptions(20.0);
            c.pricing = c.pricing.with_spot();
            Executor::new(
                small_spec(),
                AllocationPlan::new(vec![8, 8, 4, 4]),
                task.clone(),
                physics(&task, 1024),
                c,
            )
            .unwrap()
            .with_options(ExecOptions {
                seed: 4,
                ..ExecOptions::default()
            })
            .run(&configs(8, 1))
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.jct, b.jct);
        assert_eq!(a.preemptions, b.preemptions);
        assert_eq!(a.compute_cost, b.compute_cost);
    }

    #[test]
    fn trace_invariants_hold() {
        use crate::report::TraceEvent;
        let task = resnet101_cifar10();
        let report = Executor::new(
            small_spec(),
            AllocationPlan::new(vec![8, 8, 4, 4]),
            task.clone(),
            physics(&task, 1024),
            cloud(),
        )
        .unwrap()
        .run(&configs(8, 1))
        .unwrap();
        let trace = &report.trace;
        // Every training segment is well-formed and inside the run.
        let jct_end = rb_core::SimTime::ZERO + report.jct;
        for (_, stage, start, end, gpus) in trace.segments() {
            assert!(start < end, "empty segment");
            assert!(end <= jct_end, "segment past JCT");
            assert!(stage < 4);
            assert!(gpus >= 1);
        }
        // Per-trial segments never overlap (a trial trains one place at a
        // time).
        use std::collections::BTreeMap;
        let mut per_trial: BTreeMap<u64, Vec<(rb_core::SimTime, rb_core::SimTime)>> =
            BTreeMap::new();
        for (t, _, s, e, _) in trace.segments() {
            per_trial.entry(t.raw()).or_default().push((s, e));
        }
        for (trial, mut segs) in per_trial {
            segs.sort();
            for w in segs.windows(2) {
                assert!(w[0].1 <= w[1].0, "trial-{trial} segments overlap");
            }
        }
        // Barriers are one per stage, strictly increasing, last one at JCT.
        let barriers = trace.barriers();
        assert_eq!(barriers.len(), 4);
        for (i, w) in barriers.windows(2).enumerate() {
            assert!(w[0].1 < w[1].1, "barriers out of order at {i}");
        }
        assert_eq!(barriers.last().unwrap().1, jct_end);
        // Node lifecycle balances: ups == provisioned; downs ≤ ups.
        let ups = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::NodeUp { .. }))
            .count();
        let downs = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::NodeDown { .. }))
            .count();
        assert_eq!(ups, report.instances_provisioned);
        assert!(downs <= ups);
        // Migration events match the report's counter.
        let migs = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Migration { .. }))
            .count();
        assert_eq!(migs as u32, report.migrations);
    }

    /// Records every snapshot it sees; re-plans once at `replan_after`.
    struct RecordingHook {
        snapshots: Vec<(usize, SimTime, SimDuration, rb_core::Cost)>,
        replan_after: Option<(usize, Vec<u32>)>,
    }

    impl BarrierHook for RecordingHook {
        fn at_barrier(&mut self, s: &BarrierSnapshot<'_>) -> Option<Vec<u32>> {
            self.snapshots
                .push((s.stage, s.now, s.stage_span, s.cost_to_date));
            match &self.replan_after {
                Some((stage, suffix)) if *stage == s.stage => Some(suffix.clone()),
                _ => None,
            }
        }
    }

    #[test]
    fn noop_hooked_run_is_bit_identical_to_run() {
        let task = resnet101_cifar10();
        let mk = || {
            Executor::new(
                small_spec(),
                AllocationPlan::new(vec![8, 8, 4, 4]),
                task.clone(),
                physics(&task, 1024),
                cloud(),
            )
            .unwrap()
        };
        let open = mk().run(&configs(8, 1)).unwrap();
        let mut hook = RecordingHook {
            snapshots: Vec::new(),
            replan_after: None,
        };
        let hooked = mk().run_hooked(&configs(8, 1), &mut hook).unwrap();
        assert_eq!(open.jct, hooked.jct);
        assert_eq!(open.compute_cost, hooked.compute_cost);
        assert_eq!(open.best_trial, hooked.best_trial);
        assert_eq!(open.best_accuracy, hooked.best_accuracy);
        // One snapshot per non-final barrier, in order, with sane readings.
        assert_eq!(hook.snapshots.len(), 3);
        for (i, (stage, now, span, cost)) in hook.snapshots.iter().enumerate() {
            assert_eq!(*stage, i);
            assert!(*span > SimDuration::ZERO);
            assert!(*cost > rb_core::Cost::ZERO);
            assert_eq!(*now, open.stages[i].sync_end);
        }
    }

    #[test]
    fn barrier_hook_splices_the_remaining_stages() {
        let task = resnet101_cifar10();
        let mk = || {
            Executor::new(
                small_spec(),
                AllocationPlan::new(vec![8, 8, 8, 8]),
                task.clone(),
                physics(&task, 1024),
                cloud(),
            )
            .unwrap()
        };
        let open = mk().run(&configs(8, 1)).unwrap();
        assert!(open.stages.iter().all(|s| s.instances == 2));
        // Shrink stages 1..4 to 4 GPUs (one instance) at the first barrier.
        let mut hook = RecordingHook {
            snapshots: Vec::new(),
            replan_after: Some((0, vec![4, 4, 4])),
        };
        let adapted = mk().run_hooked(&configs(8, 1), &mut hook).unwrap();
        assert_eq!(adapted.stages[0].instances, 2, "splice is suffix-only");
        for s in &adapted.stages[1..] {
            assert_eq!(s.instances, 1, "stage {} kept the old plan", s.stage);
        }
        // Half the cluster from stage 1 on: cheaper, slower, same winner.
        assert!(adapted.total_cost() < open.total_cost());
        assert_eq!(adapted.best_trial, open.best_trial);
        assert_eq!(adapted.best_accuracy, open.best_accuracy);
    }

    #[test]
    fn barrier_hook_bad_suffixes_are_rejected() {
        let task = resnet101_cifar10();
        let mk = || {
            Executor::new(
                small_spec(),
                AllocationPlan::new(vec![8, 8, 8, 8]),
                task.clone(),
                physics(&task, 1024),
                cloud(),
            )
            .unwrap()
        };
        struct BadLen;
        impl BarrierHook for BadLen {
            fn at_barrier(&mut self, _: &BarrierSnapshot<'_>) -> Option<Vec<u32>> {
                Some(vec![4]) // three stages remain after the first barrier
            }
        }
        assert!(matches!(
            mk().run_hooked(&configs(8, 1), &mut BadLen),
            Err(RbError::InvalidPlan(_))
        ));
        struct ZeroGpus;
        impl BarrierHook for ZeroGpus {
            fn at_barrier(&mut self, _: &BarrierSnapshot<'_>) -> Option<Vec<u32>> {
                Some(vec![0, 4, 4])
            }
        }
        assert!(matches!(
            mk().run_hooked(&configs(8, 1), &mut ZeroGpus),
            Err(RbError::InvalidPlan(_))
        ));
    }

    #[test]
    fn trace_busy_time_matches_recorded_usage() {
        // The trace's GPU-seconds must equal what the billing meter saw
        // (per-function billing bills exactly the traced segments).
        let task = resnet101_cifar10();
        let mut c = cloud();
        c.pricing = c.pricing.with_per_function_billing();
        let report = Executor::new(
            small_spec(),
            AllocationPlan::new(vec![8, 4, 4, 4]),
            task.clone(),
            physics(&task, 1024),
            c.clone(),
        )
        .unwrap()
        .run(&configs(8, 2))
        .unwrap();
        let traced_gpu_secs = report.trace.busy_gpu_seconds();
        let billed = report.compute_cost.as_dollars();
        let expected = c.pricing.gpu_hourly().as_dollars() * traced_gpu_secs / 3600.0;
        assert!(
            (billed - expected).abs() / expected < 0.01,
            "billed {billed} vs traced {expected}"
        );
    }

    /// A spot-heavy executor: enough interruptions that preemption
    /// recovery paths (NodeDown/NodeUp mid-stage, segment cuts) all fire.
    fn stormy_executor(task: &TaskModel) -> Executor {
        let mut c = cloud().with_spot_interruptions(30.0);
        c.pricing = c.pricing.with_spot();
        Executor::new(
            small_spec(),
            AllocationPlan::new(vec![8, 8, 4, 4]),
            task.clone(),
            physics(task, 1024),
            c,
        )
        .unwrap()
        .with_options(ExecOptions {
            seed: 21,
            ..ExecOptions::default()
        })
    }

    #[test]
    fn trace_ordering_contract_holds_under_preemption() {
        // The satellite contract: per-entity non-decreasing timestamps and
        // balanced node lifecycles, for both run() and run_hooked(), on a
        // run that actually exercises the preemption recovery paths.
        let task = resnet101_cifar10();
        let open = stormy_executor(&task).run(&configs(8, 1)).unwrap();
        assert!(open.preemptions > 0, "test needs spot interruptions");
        open.trace.check_invariants().unwrap();
        let mut hook = RecordingHook {
            snapshots: Vec::new(),
            replan_after: Some((0, vec![8, 4, 4])),
        };
        let hooked = stormy_executor(&task)
            .run_hooked(&configs(8, 1), &mut hook)
            .unwrap();
        assert!(hooked.preemptions > 0);
        hooked.trace.check_invariants().unwrap();
    }

    #[test]
    fn check_invariants_rejects_malformed_traces() {
        use rb_core::NodeId;
        let down = |at| TraceEvent::NodeDown {
            node: NodeId::new(1),
            at,
            preempted: false,
        };
        let up = |at| TraceEvent::NodeUp {
            node: NodeId::new(1),
            at,
        };
        // A NodeDown with no prior NodeUp.
        let t = ExecutionTrace {
            events: vec![down(SimTime::from_secs(1))],
        };
        assert!(t.check_invariants().is_err());
        // A node coming up twice without going down.
        let t = ExecutionTrace {
            events: vec![up(SimTime::from_secs(1)), up(SimTime::from_secs(2))],
        };
        assert!(t.check_invariants().is_err());
        // Time running backwards on one node's lane.
        let t = ExecutionTrace {
            events: vec![up(SimTime::from_secs(5)), down(SimTime::from_secs(3))],
        };
        assert!(t.check_invariants().is_err());
        // A well-formed lifecycle passes.
        let t = ExecutionTrace {
            events: vec![
                up(SimTime::from_secs(1)),
                down(SimTime::from_secs(3)),
                up(SimTime::from_secs(4)),
            ],
        };
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn recording_does_not_change_execution() {
        // The recorder discipline end-to-end: a run observed by a real
        // sink is bit-identical to the unobserved run, including under
        // spot preemption.
        let task = resnet101_cifar10();
        let plain = stormy_executor(&task).run(&configs(8, 1)).unwrap();
        let sink = Arc::new(rb_obs::MemoryRecorder::new());
        let observed = stormy_executor(&task)
            .run_observed(
                &configs(8, 1),
                &mut NoopHook,
                RecorderHandle::new(sink.clone()),
            )
            .unwrap();
        assert_eq!(plain.jct, observed.jct);
        assert_eq!(plain.compute_cost, observed.compute_cost);
        assert_eq!(plain.data_cost, observed.data_cost);
        assert_eq!(plain.best_trial, observed.best_trial);
        assert_eq!(plain.best_accuracy, observed.best_accuracy);
        assert_eq!(plain.preemptions, observed.preemptions);
        assert_eq!(plain.trace, observed.trace, "trace is recorder-invariant");
        assert!(sink.event_count() > 0, "the sink actually recorded");
    }

    #[test]
    fn execution_trace_is_a_derived_view_of_the_bus() {
        // Every local trace event also went over the unified bus, and the
        // bus stream reconstructs the trace exactly.
        let task = resnet101_cifar10();
        let sink = Arc::new(rb_obs::MemoryRecorder::new());
        let report = stormy_executor(&task)
            .run_observed(
                &configs(8, 1),
                &mut NoopHook,
                RecorderHandle::new(sink.clone()),
            )
            .unwrap();
        let log = sink.finish();
        let derived = ExecutionTrace::from_events(&log.events);
        assert_eq!(derived, report.trace);
        // The bus carries more than the trace: stage span pairs, gauges,
        // and the cloud provider's own lifecycle events.
        assert!(log.events_named("exec", "stage").count() == 2 * report.stages.len());
        assert!(log.events_named("cloud", "provision").count() > 0);
        // Instance-level preemptions (cloud lane) need not equal the
        // trial-level count (colocated trials each count the same node),
        // but a stormy run sees at least one.
        assert!(log.counter("cloud", "preempted") > 0);
        assert_eq!(
            log.counter("exec", "migrations"),
            u64::from(report.migrations)
        );
        assert_eq!(
            log.counter("exec", "instances_provisioned"),
            report.instances_provisioned as u64
        );
    }

    /// A hook that arms a watchdog budget on one stage and records every
    /// firing; `suffix` is spliced back when the watchdog trips.
    struct WatchdogHook {
        armed_stage: usize,
        budget_secs: f64,
        suffix: Option<Vec<u32>>,
        fires: Vec<(usize, u64, u64)>,
    }

    impl BarrierHook for WatchdogHook {
        fn at_barrier(&mut self, _snapshot: &BarrierSnapshot<'_>) -> Option<Vec<u32>> {
            None
        }

        fn stage_budget_secs(&mut self, stage: usize) -> Option<f64> {
            (stage == self.armed_stage).then_some(self.budget_secs)
        }

        fn at_watchdog(&mut self, snapshot: &WatchdogSnapshot<'_>) -> Option<Vec<u32>> {
            self.fires
                .push((snapshot.stage, snapshot.max_remaining_units, snapshot.units));
            self.suffix.clone()
        }
    }

    #[test]
    fn armed_watchdog_that_never_fires_is_bit_identical() {
        let task = resnet101_cifar10();
        let mk = || {
            Executor::new(
                small_spec(),
                AllocationPlan::new(vec![8, 8, 4, 4]),
                task.clone(),
                physics(&task, 1024),
                cloud(),
            )
            .unwrap()
        };
        let open = mk().run(&configs(8, 1)).unwrap();
        // A generous budget on every stage: armed, checked, never hit.
        struct GenerousHook(Vec<usize>);
        impl BarrierHook for GenerousHook {
            fn at_barrier(&mut self, _s: &BarrierSnapshot<'_>) -> Option<Vec<u32>> {
                None
            }
            fn stage_budget_secs(&mut self, stage: usize) -> Option<f64> {
                self.0.push(stage);
                Some(1e9)
            }
            fn at_watchdog(&mut self, _s: &WatchdogSnapshot<'_>) -> Option<Vec<u32>> {
                panic!("a 1e9 s budget must never fire");
            }
        }
        let mut hook = GenerousHook(Vec::new());
        let armed = mk().run_hooked(&configs(8, 1), &mut hook).unwrap();
        assert_eq!(hook.0, vec![0, 1, 2, 3], "budget queried once per stage");
        assert_eq!(open.jct, armed.jct);
        assert_eq!(open.compute_cost, armed.compute_cost);
        assert_eq!(open.best_accuracy, armed.best_accuracy);
        assert_eq!(open.trace, armed.trace, "armed-but-quiet watchdog is free");
    }

    #[test]
    fn watchdog_cuts_an_overrunning_stage_and_resumes() {
        let task = resnet101_cifar10();
        let mk = || {
            Executor::new(
                small_spec(),
                AllocationPlan::new(vec![8, 8, 4, 4]),
                task.clone(),
                physics(&task, 1024),
                cloud(),
            )
            .unwrap()
        };
        let open = mk().run(&configs(8, 1)).unwrap();
        let last = open.stages.last().unwrap();
        let train_secs = (last.sync_end - last.train_start).as_secs_f64() - 1.0;
        // Half the observed training time: the final stage must overrun.
        let mut hook = WatchdogHook {
            armed_stage: 3,
            budget_secs: train_secs * 0.5,
            suffix: Some(vec![8]),
            fires: Vec::new(),
        };
        let cut = mk().run_hooked(&configs(8, 1), &mut hook).unwrap();
        assert_eq!(hook.fires.len(), 1, "the watchdog fires exactly once");
        let (stage, remaining, units) = hook.fires[0];
        assert_eq!(stage, 3);
        assert_eq!(units, 8);
        assert!(
            remaining > 0 && remaining < units,
            "cut mid-stage: {remaining}"
        );
        // The winner still trained all its units, split across segments
        // before and after the forced barrier.
        assert_eq!(cut.stages.len(), 4);
        let final_segments = cut
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::TrialSegment { stage: 3, .. }))
            .count();
        assert!(final_segments >= 2, "split stage leaves two segments");
        // The residual ran on the spliced 8-GPU allocation and the run
        // finished sooner than letting the slow 4-GPU stage drain.
        assert_eq!(cut.stages[3].gpus_per_trial, 8);
        assert!(
            cut.jct < open.jct,
            "cut {:?} < open {:?}",
            cut.jct,
            open.jct
        );
        assert_eq!(cut.best_accuracy, open.best_accuracy, "same training units");
        // Deterministic: the same seed reproduces the cut run exactly.
        let mut hook2 = WatchdogHook {
            armed_stage: 3,
            budget_secs: train_secs * 0.5,
            suffix: Some(vec![8]),
            fires: Vec::new(),
        };
        let again = mk().run_hooked(&configs(8, 1), &mut hook2).unwrap();
        assert_eq!(cut.jct, again.jct);
        assert_eq!(cut.trace, again.trace);
    }

    #[test]
    fn watchdog_bad_suffix_is_rejected() {
        let task = resnet101_cifar10();
        let exec = Executor::new(
            small_spec(),
            AllocationPlan::new(vec![8, 8, 4, 4]),
            task.clone(),
            physics(&task, 1024),
            cloud(),
        )
        .unwrap();
        let mut hook = WatchdogHook {
            armed_stage: 3,
            budget_secs: 1.0,
            // One stage remains (the current one); two entries is wrong.
            suffix: Some(vec![8, 8]),
            fires: Vec::new(),
        };
        let err = exec.run_hooked(&configs(8, 1), &mut hook).unwrap_err();
        assert!(matches!(err, RbError::InvalidPlan(_)), "{err:?}");
    }

    #[test]
    fn barrier_snapshot_carries_unit_observations() {
        let task = resnet101_cifar10();
        let exec = Executor::new(
            small_spec(),
            AllocationPlan::new(vec![8, 8, 4, 4]),
            task.clone(),
            physics(&task, 1024),
            cloud(),
        )
        .unwrap();
        struct ObsHook {
            rows: Vec<(usize, u32, Vec<UnitObservation>, f64)>,
        }
        impl BarrierHook for ObsHook {
            fn at_barrier(&mut self, s: &BarrierSnapshot<'_>) -> Option<Vec<u32>> {
                self.rows.push((
                    s.stage,
                    s.gpus_per_trial,
                    s.unit_obs.clone(),
                    s.instance_seconds,
                ));
                None
            }
        }
        let mut hook = ObsHook { rows: Vec::new() };
        exec.run_hooked(&configs(8, 1), &mut hook).unwrap();
        let phys = physics(&task, 1024);
        assert_eq!(hook.rows.len(), 3);
        for (stage, gpus, obs, held) in &hook.rows {
            assert!(*held > 0.0, "instances were billed by stage {stage}");
            assert_eq!(obs.len(), 1, "uniform allocation: one observation row");
            let o = obs[0];
            assert_eq!(o.gpus, *gpus);
            assert!(o.units > 0);
            let expect = phys.unit_mean_secs(o.gpus, o.placement);
            let err = (o.mean_secs - expect).abs() / expect;
            assert!(
                err < 0.05,
                "stage {stage}: observed {} vs {expect}",
                o.mean_secs
            );
        }
    }

    /// Arms one market switch after the `switch_after` barrier and
    /// records the capacity fields every barrier exposes.
    struct SwitchHook {
        switch_after: usize,
        directive: SwitchDirective,
        armed: bool,
        issued: bool,
        capacity: Vec<(CapacityEvents, u32, u32)>,
    }

    impl BarrierHook for SwitchHook {
        fn at_barrier(&mut self, s: &BarrierSnapshot<'_>) -> Option<Vec<u32>> {
            self.capacity
                .push((s.capacity_events, s.home_zone, s.num_zones));
            if s.stage == self.switch_after {
                self.armed = true;
            }
            None
        }

        fn pending_switch(&mut self) -> Option<SwitchDirective> {
            if self.armed && !self.issued {
                self.issued = true;
                return Some(self.directive);
            }
            None
        }
    }

    #[test]
    fn empty_switch_directives_are_bit_identical_to_run() {
        // A hook that keeps answering the pending-switch poll with an
        // empty directive must not perturb the run: the poll is outside
        // every noise stream and the empty directive short-circuits.
        struct EmptySwitch;
        impl BarrierHook for EmptySwitch {
            fn at_barrier(&mut self, _: &BarrierSnapshot<'_>) -> Option<Vec<u32>> {
                None
            }
            fn pending_switch(&mut self) -> Option<SwitchDirective> {
                Some(SwitchDirective::default())
            }
        }
        let task = resnet101_cifar10();
        let mk = || {
            Executor::new(
                small_spec(),
                AllocationPlan::new(vec![8, 8, 4, 4]),
                task.clone(),
                physics(&task, 1024),
                cloud(),
            )
            .unwrap()
        };
        let open = mk().run(&configs(8, 1)).unwrap();
        let polled = mk().run_hooked(&configs(8, 1), &mut EmptySwitch).unwrap();
        assert_eq!(open.jct, polled.jct);
        assert_eq!(open.compute_cost, polled.compute_cost);
        assert_eq!(open.best_trial, polled.best_trial);
        assert_eq!(open.best_accuracy, polled.best_accuracy);
    }

    #[test]
    fn executed_market_switch_redeploys_the_fleet_on_the_new_tier() {
        // Start on spot, switch to on-demand at the first barrier: the
        // fleet drains (old lifetimes pinned at the spot price) and the
        // next stage re-provisions on-demand — a fresh scale-up cycle,
        // more instances ever provisioned, and a pricier bill than
        // riding spot the whole way.
        let task = resnet101_cifar10();
        let spot_cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE).with_spot())
            .with_provision_delay(SimDuration::from_secs(15))
            .with_init_latency(SimDuration::from_secs(15));
        let mk = || {
            Executor::new(
                small_spec(),
                AllocationPlan::new(vec![8, 8, 8, 8]),
                task.clone(),
                physics(&task, 1024),
                spot_cloud.clone(),
            )
            .unwrap()
        };
        let open = mk().run(&configs(8, 1)).unwrap();
        let mut hook = SwitchHook {
            switch_after: 0,
            directive: SwitchDirective {
                market: Some(PricingTier::OnDemand),
                interruption_rate_per_hour: Some(0.0),
                zone: None,
            },
            armed: false,
            issued: false,
            capacity: Vec::new(),
        };
        let switched = mk().run_hooked(&configs(8, 1), &mut hook).unwrap();
        assert!(hook.issued, "the switch was polled and taken");
        assert!(
            switched.instances_provisioned > open.instances_provisioned,
            "drain + re-provision: {} vs {}",
            switched.instances_provisioned,
            open.instances_provisioned
        );
        assert!(
            switched.jct > open.jct,
            "the new market pays another scale-up cycle"
        );
        assert!(
            switched.compute_cost > open.compute_cost,
            "on-demand residual beats spot: {} vs {}",
            switched.compute_cost,
            open.compute_cost
        );
        // Training noise is per-trial and untouched by the move.
        assert_eq!(switched.best_trial, open.best_trial);
        assert_eq!(switched.best_accuracy, open.best_accuracy);
        // Barrier snapshots exposed the capacity telemetry: a calm,
        // zoneless cloud — requests happened, nothing was denied.
        assert_eq!(hook.capacity.len(), 3);
        for (ev, home, zones) in &hook.capacity {
            assert!(ev.requests > 0);
            assert!(ev.is_calm());
            assert_eq!((*home, *zones), (0, 1));
        }
    }
}
