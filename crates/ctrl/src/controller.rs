//! The closed-loop adaptation controller.
//!
//! [`AdaptiveController`] sits between the executor and the planner as a
//! [`BarrierHook`]: at every stage barrier it folds the observed stage
//! span into the [`DriftMonitor`], and when the smoothed drift factor
//! leaves the configured band — or the stage absorbed spot preemptions —
//! it re-plans the *residual* job: completed stages are frozen, survivors
//! carry their checkpointed progress (so the residual spec is just the
//! spec's suffix), and the remaining stages are re-optimized by the
//! warm-started greedy planner under the *dilated* residual deadline.
//!
//! Deadline dilation is the calibration trick: if reality runs
//! `drift_factor`× slower than the model, a model-feasible plan with
//! predicted JCT ≤ `(deadline − now) / drift_factor` will actually land
//! near the deadline. The controller never rescales the fitted profile;
//! it just tells the planner the truth about how much *model time* is
//! left.
//!
//! Plan changes are applied only through the executor's barrier splice —
//! every survivor is paused with a fresh checkpoint when the hook runs,
//! so no trial is ever stranded mid-stage on a reallocated cluster.

use crate::drift::{DriftConfig, DriftMonitor, DriftObservation};
use rb_core::{Cost, Result, SimDuration, SimTime};
use rb_exec::{BarrierHook, BarrierSnapshot};
use rb_hpo::ExperimentSpec;
use rb_obs::Lane;
use rb_planner::{plan_residual, PlannerConfig};
use rb_sim::{AllocationPlan, Simulator};

/// Controller knobs: drift detection plus the re-planner's configuration.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Drift detection.
    pub drift: DriftConfig,
    /// Configuration for mid-job residual re-planning. Defaults to the
    /// standard planner with a small exploration-sample budget — re-plans
    /// happen on the critical path, so candidates are screened at low
    /// fidelity and only survivors are re-scored in full.
    pub planner: PlannerConfig,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            drift: DriftConfig::default(),
            planner: PlannerConfig {
                exploration_samples: Some(5),
                ..PlannerConfig::default()
            },
        }
    }
}

/// What made the controller re-plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanTrigger {
    /// The smoothed drift factor left the configured band.
    Drift,
    /// The completed stage absorbed one or more spot preemptions.
    Preemption,
}

/// One re-planning decision, applied or not.
#[derive(Debug, Clone)]
pub struct ReplanEvent {
    /// The barrier (completed stage) at which the re-plan ran.
    pub stage: usize,
    /// Virtual time of the barrier.
    pub at: SimTime,
    /// What tripped it.
    pub trigger: ReplanTrigger,
    /// The smoothed drift factor at decision time.
    pub drift_factor: f64,
    /// The dilated deadline handed to the residual planner.
    pub residual_deadline: SimDuration,
    /// The incumbent plan's suffix for the remaining stages.
    pub old_suffix: Vec<u32>,
    /// The planner's choice for the remaining stages.
    pub new_suffix: Vec<u32>,
    /// Whether the new suffix was predicted to fit the dilated deadline.
    pub feasible: bool,
    /// Predicted residual JCT of the new suffix (model time).
    pub predicted_jct: SimDuration,
    /// Predicted residual cost of the new suffix.
    pub predicted_cost: Cost,
    /// True when the suffix differed from the incumbent and was spliced
    /// into the executing plan.
    pub applied: bool,
}

/// The full adaptation record of one run.
#[derive(Debug, Clone, Default)]
pub struct AdaptationLog {
    /// Every re-planning decision, in barrier order.
    pub events: Vec<ReplanEvent>,
    /// Every drift reading, one per non-final barrier.
    pub observations: Vec<DriftObservation>,
}

impl AdaptationLog {
    /// Re-plans that actually changed the executing plan.
    pub fn applied(&self) -> usize {
        self.events.iter().filter(|e| e.applied).count()
    }
}

/// A [`BarrierHook`] that closes the loop between execution and planning.
#[derive(Debug)]
pub struct AdaptiveController {
    sim: Simulator,
    spec: ExperimentSpec,
    deadline: SimDuration,
    config: ControllerConfig,
    monitor: DriftMonitor,
    preemptions_seen: u32,
    events: Vec<ReplanEvent>,
}

impl AdaptiveController {
    /// Creates a controller for a job about to execute `plan` under
    /// `deadline`. `sim` must be the planner's view (fitted profile +
    /// cloud profile) — drift is measured against *its* predictions.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from computing the initial per-stage
    /// envelope (e.g. a plan that does not match the spec).
    pub fn new(
        sim: Simulator,
        spec: ExperimentSpec,
        plan: &AllocationPlan,
        deadline: SimDuration,
        config: ControllerConfig,
    ) -> Result<Self> {
        let envelope = sim.stage_quantiles(&spec, plan)?;
        let monitor = DriftMonitor::new(envelope, config.drift.clone());
        Ok(AdaptiveController {
            sim,
            spec,
            deadline,
            config,
            monitor,
            preemptions_seen: 0,
            events: Vec::new(),
        })
    }

    /// The drift monitor's current state.
    pub fn monitor(&self) -> &DriftMonitor {
        &self.monitor
    }

    /// Re-planning decisions so far.
    pub fn events(&self) -> &[ReplanEvent] {
        &self.events
    }

    /// Consumes the controller, returning its full adaptation record.
    pub fn into_log(self) -> AdaptationLog {
        AdaptationLog {
            events: self.events,
            observations: self.monitor.into_observations(),
        }
    }

    /// The residual deadline in model time: wall-clock time left, shrunk
    /// (or stretched) by the drift factor. Floored at one second — a
    /// blown deadline still needs *some* plan, and the planner's
    /// minimum-JCT fallback loses the least.
    fn dilated_residual_deadline(&self, now: SimTime) -> SimDuration {
        let elapsed = (now - SimTime::ZERO).as_secs_f64();
        let left = (self.deadline.as_secs_f64() - elapsed).max(1.0);
        SimDuration::from_secs_f64(left / self.monitor.drift_factor().max(1e-6))
    }
}

impl BarrierHook for AdaptiveController {
    fn at_barrier(&mut self, snap: &BarrierSnapshot<'_>) -> Option<Vec<u32>> {
        self.monitor.observe(snap.stage, snap.stage_span);
        let recorder = self.sim.recorder().clone();
        // The drift-factor time series: one gauge per barrier, whether or
        // not the controller intervenes.
        recorder.gauge(
            snap.now,
            "ctrl",
            "drift_factor",
            Lane::Controller,
            self.monitor.drift_factor(),
        );
        let fresh_preemptions = snap.preemptions.saturating_sub(self.preemptions_seen);
        self.preemptions_seen = snap.preemptions;

        let trigger = if self.config.drift.replan_on_preemption && fresh_preemptions > 0 {
            ReplanTrigger::Preemption
        } else if self.monitor.drifted() {
            ReplanTrigger::Drift
        } else {
            return None;
        };
        recorder.counter_add("ctrl", "replans_triggered", 1);
        if recorder.enabled() {
            recorder.instant(
                snap.now,
                "ctrl",
                "replan.trigger",
                Lane::Controller,
                vec![
                    ("stage", snap.stage.into()),
                    (
                        "trigger",
                        match trigger {
                            ReplanTrigger::Drift => "drift",
                            ReplanTrigger::Preemption => "preemption",
                        }
                        .into(),
                    ),
                    ("drift_factor", self.monitor.drift_factor().into()),
                ],
            );
        }

        let next = snap.stage + 1;
        // Residual job: the spec's suffix (survivor progress lives in
        // checkpoints), warm-started from the incumbent plan's suffix.
        let residual_spec = self.spec.suffix(next).ok()?;
        let old_suffix = snap.plan.as_slice()[next..].to_vec();
        let warm = AllocationPlan::new(old_suffix.clone());
        let residual_deadline = self.dilated_residual_deadline(snap.now);
        // A planner failure must not kill the job; keep the incumbent.
        let out = plan_residual(
            &self.sim,
            &residual_spec,
            residual_deadline,
            &warm,
            &self.config.planner,
        )
        .ok()?;

        let new_suffix = out.plan.as_slice().to_vec();
        let applied = new_suffix != old_suffix;
        recorder.counter_add(
            "ctrl",
            if applied {
                "replans_applied"
            } else {
                "replans_rejected"
            },
            1,
        );
        if recorder.enabled() {
            recorder.instant(
                snap.now,
                "ctrl",
                if applied { "replan.apply" } else { "replan.reject" },
                Lane::Controller,
                vec![
                    ("stage", snap.stage.into()),
                    ("feasible", out.feasible.into()),
                    ("predicted_jct_secs", out.prediction.jct.as_secs_f64().into()),
                    ("predicted_cost_usd", out.prediction.cost.as_dollars().into()),
                ],
            );
        }
        if applied {
            // The envelope must describe the plan actually executing.
            if let Ok(qs) = self.sim.stage_quantiles(&residual_spec, &out.plan) {
                self.monitor.retarget(next, qs);
            }
        }
        self.events.push(ReplanEvent {
            stage: snap.stage,
            at: snap.now,
            trigger,
            drift_factor: self.monitor.drift_factor(),
            residual_deadline,
            old_suffix,
            new_suffix: new_suffix.clone(),
            feasible: out.feasible,
            predicted_jct: out.prediction.jct,
            predicted_cost: out.prediction.cost,
            applied,
        });
        applied.then_some(new_suffix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_8XLARGE;
    use rb_cloud::CloudPricing;
    use rb_exec::{ExecOptions, Executor};
    use rb_hpo::{Config, Dim, SearchSpace};
    use rb_profile::{CloudProfile, ModelProfile};
    use rb_scaling::{AnalyticScaling, RescaledScaling};
    use rb_train::task::resnet101_cifar10;
    use rb_train::TaskModel;
    use rb_core::Prng;
    use std::sync::Arc;

    fn cloud() -> CloudProfile {
        CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay(SimDuration::from_secs(15))
            .with_init_latency(SimDuration::from_secs(15))
    }

    /// Executor physics at `slowdown`× the nominal per-iteration latency.
    fn physics(task: &TaskModel, slowdown: f64) -> ModelProfile {
        let nominal = Arc::new(AnalyticScaling::for_arch(&task.arch, 1024, 4));
        let scaled = Arc::new(RescaledScaling::new(nominal, slowdown));
        let mut p = ModelProfile::from_scaling(
            task.name,
            scaled,
            task.steps_per_iter(1024),
            2.0,
            0.02,
        );
        p.train_startup_secs = 2.0;
        p
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec::from_stages(&[(8, 2), (4, 4), (2, 8), (1, 16)]).unwrap()
    }

    fn configs(n: usize, seed: u64) -> Vec<Config> {
        let space = SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
            .add("weight_decay", Dim::LogUniform { lo: 1e-5, hi: 1e-2 })
            .build()
            .unwrap();
        space.sample_n(n, &mut Prng::seed_from_u64(seed))
    }

    fn executor(task: &TaskModel, plan: &AllocationPlan, slowdown: f64) -> Executor {
        Executor::new(
            spec(),
            plan.clone(),
            task.clone(),
            physics(task, slowdown),
            cloud(),
        )
        .unwrap()
        .with_options(ExecOptions {
            seed: 11,
            ..ExecOptions::default()
        })
    }

    /// The planner's view: the *nominal* model (slowdown 1.0).
    fn controller(
        plan: &AllocationPlan,
        deadline: SimDuration,
        config: ControllerConfig,
    ) -> AdaptiveController {
        let task = resnet101_cifar10();
        let sim = Simulator::new(physics(&task, 1.0), cloud());
        AdaptiveController::new(sim, spec(), plan, deadline, config).unwrap()
    }

    #[test]
    fn no_drift_means_no_replans_and_identical_execution() {
        let task = resnet101_cifar10();
        let plan = AllocationPlan::new(vec![8, 8, 8, 8]);
        let open = executor(&task, &plan, 1.0).run(&configs(8, 3)).unwrap();
        // Generous deadline, matched physics: the controller observes but
        // never intervenes, and the run is bit-identical to open loop.
        let mut ctrl = controller(&plan, SimDuration::from_hours(2), ControllerConfig::default());
        let adaptive = executor(&task, &plan, 1.0)
            .run_hooked(&configs(8, 3), &mut ctrl)
            .unwrap();
        let log = ctrl.into_log();
        assert_eq!(log.applied(), 0, "events: {:?}", log.events);
        assert_eq!(adaptive.jct, open.jct);
        assert_eq!(adaptive.compute_cost, open.compute_cost);
        assert_eq!(adaptive.best_accuracy, open.best_accuracy);
        assert_eq!(log.observations.len(), 3);
    }

    #[test]
    fn injected_slowdown_triggers_a_drift_replan_that_speeds_up_the_job() {
        let task = resnet101_cifar10();
        let plan = AllocationPlan::new(vec![8, 8, 8, 8]);
        let slowdown = 1.6;
        let open = executor(&task, &plan, slowdown)
            .run(&configs(8, 3))
            .unwrap();
        // Deadline sized so the nominal plan would fit but the slowed
        // reality misses it: the controller must buy speed.
        let deadline = SimDuration::from_secs_f64(open.jct.as_secs_f64() * 0.85);
        let mut ctrl = controller(&plan, deadline, ControllerConfig::default());
        let adaptive = executor(&task, &plan, slowdown)
            .run_hooked(&configs(8, 3), &mut ctrl)
            .unwrap();
        let log = ctrl.into_log();
        assert!(log.applied() > 0, "no re-plan applied: {:?}", log.events);
        assert!(log
            .events
            .iter()
            .any(|e| e.trigger == ReplanTrigger::Drift));
        assert!(
            adaptive.jct < open.jct,
            "adaptive {} !< open {}",
            adaptive.jct,
            open.jct
        );
        // The tuning outcome is preserved across the re-plan.
        assert_eq!(adaptive.best_accuracy, open.best_accuracy);
    }

    #[test]
    fn preemption_triggers_a_replan_even_without_drift() {
        let task = resnet101_cifar10();
        let plan = AllocationPlan::new(vec![8, 8, 4, 4]);
        let mut c = cloud().with_spot_interruptions(40.0);
        c.pricing = c.pricing.with_spot();
        let exec = Executor::new(
            spec(),
            plan.clone(),
            task.clone(),
            physics(&task, 1.0),
            c.clone(),
        )
        .unwrap()
        .with_options(ExecOptions {
            seed: 11,
            ..ExecOptions::default()
        });
        // Drift detection effectively off: only preemptions can trigger.
        let config = ControllerConfig {
            drift: DriftConfig {
                replan_threshold: 100.0,
                ..DriftConfig::default()
            },
            ..ControllerConfig::default()
        };
        let sim = Simulator::new(physics(&task, 1.0), c);
        let mut ctrl =
            AdaptiveController::new(sim, spec(), &plan, SimDuration::from_hours(2), config)
                .unwrap();
        let report = exec.run_hooked(&configs(8, 3), &mut ctrl).unwrap();
        assert!(report.preemptions > 0, "rate 40/h produced no preemptions");
        let log = ctrl.into_log();
        assert!(
            log.events
                .iter()
                .all(|e| e.trigger == ReplanTrigger::Preemption),
            "{:?}",
            log.events
        );
        assert!(!log.events.is_empty());
    }

    #[test]
    fn adaptive_execution_is_deterministic_per_seed() {
        let task = resnet101_cifar10();
        let plan = AllocationPlan::new(vec![8, 8, 8, 8]);
        let run = || {
            let mut ctrl = controller(
                &plan,
                SimDuration::from_secs(1200),
                ControllerConfig::default(),
            );
            let r = executor(&task, &plan, 1.5)
                .run_hooked(&configs(8, 3), &mut ctrl)
                .unwrap();
            (r, ctrl.into_log())
        };
        let (a, la) = run();
        let (b, lb) = run();
        assert_eq!(a.jct, b.jct);
        assert_eq!(a.compute_cost, b.compute_cost);
        assert_eq!(la.events.len(), lb.events.len());
        for (x, y) in la.events.iter().zip(&lb.events) {
            assert_eq!(x.new_suffix, y.new_suffix);
            assert_eq!(x.drift_factor, y.drift_factor);
        }
    }
}
