//! Extension — online adaptation (`repro ext-adapt`).
//!
//! The paper plans once, before execution; this extension measures what
//! closing the loop buys. The Table 2 workload is planned under a 30 min
//! deadline from the *profiled* model, then executed under injected
//! model error the planner never saw — a uniform iteration slowdown,
//! communication contention, or a straggling node under one gang size —
//! plus spot interruptions, both open loop and with the rb-ctrl
//! adaptation controller. Each cell of the scenario × interruption-rate
//! × threshold × watchdog sweep reports deadline-hit and cost for both
//! modes plus the applied re-plans, watchdog fires, profile refits and
//! advisory market switches. The straggler cells are the watchdog's
//! reason to exist: drift confined to the late long rungs crosses no
//! barrier in time, so only a mid-stage cut can recover the deadline.

use crate::tables::{e2e_cloud, physics_for, profiled_model, search_space};
use rb_core::{Result, SimDuration};
use rb_ctrl::{ControllerConfig, DriftConfig, ReplanTrigger, WatchdogConfig};
use rb_exec::ExecOptions;
use rb_hpo::ShaParams;
use rb_planner::{plan_rubberband, PlannerConfig};
use rb_profile::ModelProfile;
use rb_scaling::{PlacementQuality, RefitScaling, RescaledScaling, ScalingModel};
use rb_train::TaskModel;
use std::sync::Arc;

/// One injected model-error scenario the planner never sees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftScenario {
    /// Uniform slowdown of every iteration (1.0 = calibrated). Visible
    /// from the first stage barrier onward.
    pub slowdown: f64,
    /// Extra slowdown of the *communication* share only (1.0 = none) —
    /// parallelism-dependent contention the component refit can pin on
    /// the communication term instead of diluting into a scalar.
    pub comm_slowdown: f64,
    /// A degraded node pinned under every gang of exactly this size, as
    /// `(gang_gpus, factor)`: iterations on those gangs run `factor`×
    /// slow, every other gang size is untouched. Keyed to the plan's
    /// late-rung gang, this is drift that no barrier before the afflicted
    /// stage can see — and that a re-planned residual escapes, because a
    /// different gang size provisions fresh capacity.
    pub straggler: Option<(u32, f64)>,
}

impl DriftScenario {
    /// A calibrated scenario (no injected error).
    pub fn calm() -> Self {
        DriftScenario {
            slowdown: 1.0,
            comm_slowdown: 1.0,
            straggler: None,
        }
    }

    /// Uniform slowdown only.
    pub fn uniform(slowdown: f64) -> Self {
        DriftScenario {
            slowdown,
            comm_slowdown: 1.0,
            straggler: None,
        }
    }

    /// Communication contention only.
    pub fn contention(comm_slowdown: f64) -> Self {
        DriftScenario {
            slowdown: 1.0,
            comm_slowdown,
            straggler: None,
        }
    }

    /// A degraded node under every `gang_gpus`-GPU gang only.
    pub fn straggler(gang_gpus: u32, factor: f64) -> Self {
        DriftScenario {
            slowdown: 1.0,
            comm_slowdown: 1.0,
            straggler: Some((gang_gpus, factor)),
        }
    }
}

/// Ground-truth wrapper for [`DriftScenario::straggler`]: one gang size
/// is served by a degraded node and runs `factor`× slow end to end.
#[derive(Debug)]
struct StragglerScaling {
    inner: rb_scaling::SharedScaling,
    gang_gpus: u32,
    factor: f64,
}

impl ScalingModel for StragglerScaling {
    fn iter_latency_secs(&self, gpus: u32, placement: PlacementQuality) -> f64 {
        let l = self.inner.iter_latency_secs(gpus, placement);
        if gpus == self.gang_gpus {
            self.factor * l
        } else {
            l
        }
    }

    fn batch_size(&self) -> u32 {
        self.inner.batch_size()
    }

    fn latency_components(&self, gpus: u32, placement: PlacementQuality) -> (f64, f64) {
        let (c, m) = self.inner.latency_components(gpus, placement);
        if gpus == self.gang_gpus {
            (self.factor * c, self.factor * m)
        } else {
            (c, m)
        }
    }
}

/// One sweep cell: open-loop vs adaptive execution of the same plan.
#[derive(Debug, Clone)]
pub struct AdaptRow {
    /// Injected uniform ground-truth slowdown (1.0 = calibrated).
    pub slowdown: f64,
    /// Injected communication-share slowdown (1.0 = none).
    pub comm_slowdown: f64,
    /// Injected straggler as `(gang_gpus, factor)`, or `None`.
    pub straggler: Option<(u32, f64)>,
    /// Spot interruptions per instance-hour (0 = on-demand).
    pub rate_per_hour: f64,
    /// The controller's drift re-plan threshold.
    pub threshold: f64,
    /// Whether the intra-stage watchdog was armed.
    pub watchdog: bool,
    /// Open-loop executed JCT in seconds.
    pub open_jct_secs: f64,
    /// Open-loop executed cost in dollars.
    pub open_cost: f64,
    /// Open loop met the deadline.
    pub open_hit: bool,
    /// Adaptive executed JCT in seconds.
    pub adaptive_jct_secs: f64,
    /// Adaptive executed cost in dollars.
    pub adaptive_cost: f64,
    /// Adaptive met the deadline.
    pub adaptive_hit: bool,
    /// Re-plans the controller actually spliced into the plan.
    pub replans: usize,
    /// Mid-stage watchdog interruptions.
    pub watchdog_fires: usize,
    /// Profile refits the controller applied.
    pub refits: usize,
    /// Re-plans where the Monte-Carlo evaluation preferred the other
    /// market (advisory).
    pub market_switches: usize,
    /// Preemptions absorbed by the adaptive run.
    pub preemptions: u32,
}

/// Ground-truth physics with every iteration `slowdown`× the nominal
/// latency — the injected model error the planner cannot see.
pub fn slowed_physics(task: &TaskModel, batch: u32, node_gpus: u32, slowdown: f64) -> ModelProfile {
    let mut p = physics_for(task, batch, node_gpus);
    if slowdown != 1.0 {
        p.scaling = Arc::new(RescaledScaling::new(p.scaling.clone(), slowdown));
    }
    p
}

/// Ground-truth physics under a full [`DriftScenario`]: the uniform
/// slowdown applied first, then the communication share rescaled, then
/// the straggled gang size degraded on top.
pub fn drifted_physics(
    task: &TaskModel,
    batch: u32,
    node_gpus: u32,
    scenario: DriftScenario,
) -> ModelProfile {
    let mut p = slowed_physics(task, batch, node_gpus, scenario.slowdown);
    if scenario.comm_slowdown != 1.0 {
        p.scaling = Arc::new(RefitScaling::new(
            p.scaling.clone(),
            1.0,
            scenario.comm_slowdown,
        ));
    }
    if let Some((gang_gpus, factor)) = scenario.straggler {
        p.scaling = Arc::new(StragglerScaling {
            inner: p.scaling.clone(),
            gang_gpus,
            factor,
        });
    }
    p
}

/// Runs the adaptation sweep. The plan is compiled once (nominal model,
/// 30 min deadline); every `scenario × rate × threshold × watchdog` cell
/// executes it open loop and with the adaptation controller, from the
/// same seed.
///
/// # Errors
///
/// Propagates planner/executor errors.
pub fn ext_adapt(
    scenarios: &[DriftScenario],
    rates: &[f64],
    thresholds: &[f64],
    watchdogs: &[bool],
    seed: u64,
) -> Result<(SimDuration, Vec<AdaptRow>)> {
    let task = rb_train::task::resnet101_cifar10();
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate()?;
    let model = profiled_model(&task, 1024, 4, 32);
    let space = search_space();
    let deadline = SimDuration::from_mins(30);
    let sim = rb_sim::Simulator::new(model.clone(), e2e_cloud());
    let out = plan_rubberband(&sim, &spec, deadline, &PlannerConfig::default())?;

    let mut rows = Vec::new();
    for &scenario in scenarios {
        let physics = drifted_physics(&task, 1024, 4, scenario);
        for &rate in rates {
            let mut cloud = e2e_cloud().with_spot_interruptions(rate);
            if rate > 0.0 {
                cloud.pricing = cloud.pricing.with_spot();
            }
            let options = || ExecOptions {
                seed,
                ..ExecOptions::default()
            };
            let open = rubberband::execute_with(
                &spec,
                &out.plan,
                &task,
                &physics,
                &cloud,
                &space,
                options(),
            )?;
            for &threshold in thresholds {
                for &watchdog in watchdogs {
                    let config = ControllerConfig {
                        drift: DriftConfig {
                            replan_threshold: threshold,
                            ..DriftConfig::default()
                        },
                        watchdog: WatchdogConfig {
                            enabled: watchdog,
                            ..WatchdogConfig::default()
                        },
                        ..ControllerConfig::default()
                    };
                    let adaptive = rubberband::execute_adaptive(
                        &spec,
                        &out.plan,
                        &task,
                        &physics,
                        &model,
                        &cloud,
                        &space,
                        deadline,
                        options(),
                        &config,
                    )?;
                    let log = &adaptive.adaptation;
                    rows.push(AdaptRow {
                        slowdown: scenario.slowdown,
                        comm_slowdown: scenario.comm_slowdown,
                        straggler: scenario.straggler,
                        rate_per_hour: rate,
                        threshold,
                        watchdog,
                        open_jct_secs: open.jct.as_secs_f64(),
                        open_cost: open.total_cost().as_dollars(),
                        open_hit: open.jct <= deadline,
                        adaptive_jct_secs: adaptive.report.jct.as_secs_f64(),
                        adaptive_cost: adaptive.report.total_cost().as_dollars(),
                        adaptive_hit: adaptive.deadline_met(),
                        replans: log.applied(),
                        watchdog_fires: log
                            .events
                            .iter()
                            .filter(|e| e.trigger == ReplanTrigger::Watchdog)
                            .count(),
                        refits: log.refits.len(),
                        market_switches: log.events.iter().filter(|e| e.market_switched).count(),
                        preemptions: adaptive.report.preemptions,
                    });
                }
            }
        }
    }
    Ok((deadline, rows))
}

/// Renders the adaptation sweep, ending with a machine-checkable summary
/// line (counts only, so it is stable across platforms —
/// `scripts/verify.sh` diffs it against a checked-in expectation).
pub fn print_ext_adapt(deadline: SimDuration, rows: &[AdaptRow]) {
    println!("Extension — online adaptation (rb-ctrl) under injected drift");
    println!(
        "(Table 2 workload, RubberBand plan @ {deadline} deadline; slowdown is \
         hidden from the planner)\n"
    );
    println!(
        "{:>8} {:>6} {:>7} {:>7} {:>9} {:>3} | {:>10} {:>9} {:>5} | {:>10} {:>9} {:>5} {:>7} {:>3} {:>5} {:>4} {:>6}",
        "slowdown", "comm", "strag", "spot/h", "threshold", "wd", "open JCT", "cost", "hit",
        "adapt JCT", "cost", "hit", "replans", "wdf", "refit", "mkt", "preempt"
    );
    for r in rows {
        println!(
            "{:>8.2} {:>6.2} {:>7} {:>7.1} {:>9.2} {:>3} | {:>10} {:>9} {:>5} | {:>10} {:>9} {:>5} {:>7} {:>3} {:>5} {:>4} {:>6}",
            r.slowdown,
            r.comm_slowdown,
            r.straggler
                .map_or_else(|| "-".to_string(), |(g, f)| format!("{f}x@{g}")),
            r.rate_per_hour,
            r.threshold,
            if r.watchdog { "on" } else { "off" },
            SimDuration::from_secs_f64(r.open_jct_secs).to_string(),
            format!("${:.2}", r.open_cost),
            if r.open_hit { "yes" } else { "MISS" },
            SimDuration::from_secs_f64(r.adaptive_jct_secs).to_string(),
            format!("${:.2}", r.adaptive_cost),
            if r.adaptive_hit { "yes" } else { "MISS" },
            r.replans,
            r.watchdog_fires,
            r.refits,
            r.market_switches,
            r.preemptions
        );
    }
    let open_hits = rows.iter().filter(|r| r.open_hit).count();
    let adaptive_hits = rows.iter().filter(|r| r.adaptive_hit).count();
    let replans: usize = rows.iter().map(|r| r.replans).sum();
    let watchdog_fires: usize = rows.iter().map(|r| r.watchdog_fires).sum();
    let refits: usize = rows.iter().map(|r| r.refits).sum();
    let market_switches: usize = rows.iter().map(|r| r.market_switches).sum();
    // Cells the armed watchdog saved: same scenario/rate/threshold, the
    // watchdog-off run missed the deadline, the watchdog-on run met it —
    // drift that barrier-only adaptation could not recover.
    let wd_recoveries = rows
        .iter()
        .filter(|r| r.watchdog && r.adaptive_hit)
        .filter(|r| {
            rows.iter().any(|o| {
                !o.watchdog
                    && !o.adaptive_hit
                    && o.slowdown == r.slowdown
                    && o.comm_slowdown == r.comm_slowdown
                    && o.straggler == r.straggler
                    && o.rate_per_hour == r.rate_per_hour
                    && o.threshold == r.threshold
            })
        })
        .count();
    // Calm cells (no injected drift, no spot churn) must be bit-identical
    // to open loop — with the watchdog armed or not: the controller (and
    // the armed-but-silent watchdog) observed but never intervened.
    let calm_mismatches = rows
        .iter()
        .filter(|r| {
            r.slowdown == 1.0
                && r.comm_slowdown == 1.0
                && r.straggler.is_none()
                && r.rate_per_hour == 0.0
        })
        .filter(|r| r.replans != 0 || r.adaptive_cost != r.open_cost)
        .count();
    println!(
        "\next-adapt summary: cells={} open_hits={open_hits} adaptive_hits={adaptive_hits} \
         applied_replans={replans} watchdog_fires={watchdog_fires} refits={refits} \
         market_switches={market_switches} wd_recoveries={wd_recoveries} \
         calm_mismatches={calm_mismatches}",
        rows.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_drift_cell_never_replans_and_keeps_cost() {
        // The watchdog is armed in one of the two cells: a calibrated run
        // must stay bit-identical to open loop either way.
        let (deadline, rows) =
            ext_adapt(&[DriftScenario::calm()], &[0.0], &[1.15], &[false, true], 1).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(
                r.replans, 0,
                "calibrated run re-planned (wd={})",
                r.watchdog
            );
            assert_eq!(r.watchdog_fires, 0, "watchdog fired on a calm run");
            assert_eq!(r.adaptive_cost, r.open_cost, "controller changed cost");
            assert_eq!(r.adaptive_jct_secs, r.open_jct_secs);
            assert!(r.open_hit && r.adaptive_hit);
            assert!(SimDuration::from_secs_f64(r.open_jct_secs) <= deadline);
        }
    }

    #[test]
    fn adaptation_recovers_the_deadline_under_injected_slowdown() {
        let (_, rows) =
            ext_adapt(&[DriftScenario::uniform(1.5)], &[0.0], &[1.15], &[true], 1).unwrap();
        let r = &rows[0];
        assert!(
            !r.open_hit,
            "open loop unexpectedly met the deadline (jct {}s)",
            r.open_jct_secs
        );
        assert!(r.replans > 0, "no re-plan under 1.5x slowdown");
        assert!(
            r.adaptive_hit,
            "adaptive missed: jct {}s after {} replans",
            r.adaptive_jct_secs, r.replans
        );
        assert!(r.adaptive_jct_secs < r.open_jct_secs);
    }

    #[test]
    fn watchdog_recovers_a_hidden_straggler_that_barriers_cannot() {
        // A degraded node under the plan's 4-GPU gangs: the 1- and 2-GPU
        // early rungs cross their barriers exactly on schedule, then the
        // long straggled rungs overrun with no clean barrier signal in
        // time. Barrier-only adaptation learns the truth only when the
        // straggled stage finally completes — too late to recover — while
        // the armed watchdog cuts the overrun mid-stage and re-plans the
        // residual onto fresh (un-straggled) gang sizes.
        let (_, rows) = ext_adapt(
            &[DriftScenario::straggler(4, 6.0)],
            &[0.0],
            &[1.15],
            &[false, true],
            1,
        )
        .unwrap();
        let off = rows.iter().find(|r| !r.watchdog).unwrap();
        let on = rows.iter().find(|r| r.watchdog).unwrap();
        assert!(
            !off.open_hit,
            "open loop met the deadline under a straggler"
        );
        assert!(
            !off.adaptive_hit,
            "barrier-only adaptation recovered an overrun it should only \
             have seen after the straggled stage ended (jct {}s)",
            off.adaptive_jct_secs
        );
        assert!(on.watchdog_fires > 0, "watchdog never fired");
        assert!(on.refits > 0, "watchdog evidence produced no refit");
        assert!(
            on.adaptive_hit,
            "watchdog missed: jct {}s after {} fires / {} replans",
            on.adaptive_jct_secs, on.watchdog_fires, on.replans
        );
        assert!(on.adaptive_jct_secs < off.adaptive_jct_secs);
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let run = || {
            ext_adapt(&[DriftScenario::uniform(1.5)], &[1.0], &[1.25], &[true], 7)
                .unwrap()
                .1
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.adaptive_jct_secs, y.adaptive_jct_secs);
            assert_eq!(x.adaptive_cost, y.adaptive_cost);
            assert_eq!(x.replans, y.replans);
            assert_eq!(x.watchdog_fires, y.watchdog_fires);
            assert_eq!(x.refits, y.refits);
            assert_eq!(x.preemptions, y.preemptions);
        }
    }
}
