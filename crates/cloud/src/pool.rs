//! A shared elastic instance pool for multi-job serving.
//!
//! RubberBand's cost argument (§3: avoid the 60 s minimum charge and
//! hand-over latency for capacity you churn) compounds across jobs:
//! capacity released at one job's down-scaling barrier is exactly the
//! warm capacity another job is about to provision. The
//! [`InstancePool`] models that handoff. A job that scales down
//! *offers* its released instances to the pool instead of letting them
//! vanish; a job that scales up *acquires* parked capacity before
//! asking the provider for fresh instances.
//!
//! Accounting is deliberately explicit, because the savings claim is
//! the whole point:
//!
//! * every donor terminates the instance **on its own meter** — its
//!   [`crate::BillingMeter`] bill is exactly what it would have been
//!   without a pool, minimum-charge floor included;
//! * at *handoff* (and only then) the pool credits back the donor's
//!   minimum-charge premium — the difference between the floored and
//!   the exact charge — because economically the instance kept
//!   running instead of being churned. A parked entry that expires
//!   un-adopted credits nothing;
//! * the pool pays for the park itself: prorated hourly cost for the
//!   time each instance sits idle between release and adoption (or
//!   expiry). Pooling is only a net win when handoffs actually happen
//!   — [`PoolStats`] exposes both sides so a serve report can show
//!   `net = billed − saved + park`.
//!
//! The double-release guard is load-bearing: a crafted double barrier
//! (a watchdog split followed by the regular stage barrier, or a spot
//! reclaim racing the executor's own release) can offer the same
//! instance twice. The second offer must be rejected, or the
//! minimum-charge saving would be credited twice for one instance.
//! Under *concurrent* contention there is a second aliasing hazard.
//! Instance ids live in per-job (per-provider) id spaces, so the pool
//! identifies capacity by a *physical id*: minted from
//! `(donor job, local id)` at first offer ([`physical_id`]) and
//! carried through every handoff ([`PoolGrant::physical`], remembered
//! by the adopter's cluster manager). The pool tracks *custody* of
//! every physical it has handled: a handoff moves custody to the
//! adopting job (which may be the original donor on a down-up plan —
//! re-parking after re-adoption is a legal cycle, not a double
//! release), and expiry/drain marks the instance dead. An offer that
//! contradicts custody — the physical is parked under a different
//! donor, or custody moved to another job — is a stale claim on
//! capacity the offerer no longer owns, rejected with a typed
//! [`RbError::PoolConflict`] and counted in [`PoolStats::conflicts`],
//! never silently re-parked. An offer of a physical the pool already
//! terminated, or one the offerer itself still has parked, is counted
//! in [`PoolStats::double_releases`] and declined.
//!
//! The ledger balances exactly: every offer is accounted once
//! (`offers = parked + rejected_full + double_releases + conflicts`)
//! and every parked instance leaves once
//! (`parked = handoffs + expirations + drained + still-parked`) —
//! see [`PoolStats::balances`]. Park time is billed only for time the
//! pool actually held an instance: an entry that outlives
//! [`PoolConfig::max_hold_secs`] is billed exactly the hold window at
//! expiry, never up to a later `drain` call.
//!
//! All pool state is deterministic: offers append in call order,
//! acquisition scans oldest-first (same-group entries first when the
//! acquirer declares a job-group affinity), and nothing here draws
//! randomness.

use crate::pricing::CloudPricing;
use rb_core::{Cost, InstanceId, RbError, Result, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Static configuration of a shared pool.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum instances parked at once. Offers beyond this are
    /// declined (the donor's termination stands). Must be positive: a
    /// zero-capacity pool silently degrades every handoff to a decline,
    /// which is indistinguishable from "pool off" except for the park
    /// bookkeeping — [`PoolConfig::validate`] rejects it instead.
    pub capacity: usize,
    /// How long a parked instance is held before the pool gives up and
    /// terminates it (paying the park cost with nothing to show).
    pub max_hold_secs: f64,
    /// Handoff latency: seconds between acquisition and the instance
    /// being usable by the adopting job (state scrub + reattach). Far
    /// below fresh-provision delay + init latency, which is the point.
    pub handoff_secs: f64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            capacity: 8,
            max_hold_secs: 120.0,
            handoff_secs: 2.0,
        }
    }
}

impl PoolConfig {
    /// Checks the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] for a zero-capacity pool or a
    /// non-finite/negative hold or handoff time.
    pub fn validate(&self) -> Result<()> {
        if self.capacity == 0 {
            return Err(RbError::InvalidConfig(
                "shared pool capacity must be positive (zero would silently decline every \
                 handoff; disable the pool instead)"
                    .into(),
            ));
        }
        for (what, v) in [
            ("max_hold_secs", self.max_hold_secs),
            ("handoff_secs", self.handoff_secs),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(RbError::InvalidConfig(format!(
                    "shared pool: {what} must be finite and non-negative, got {v}"
                )));
            }
        }
        Ok(())
    }
}

/// One parked instance awaiting adoption.
#[derive(Debug, Clone)]
struct ParkedInstance {
    donor_job: u64,
    /// Job group (e.g. one tenant's Hyperband bracket set) the donor
    /// belongs to; acquisition prefers same-group entries so capacity
    /// flows within a group before being offered cross-tenant.
    donor_group: Option<u64>,
    /// Physical identity, stable across handoffs; detects cross-job
    /// aliasing on re-offer.
    physical: u64,
    released_at: SimTime,
    /// Billed lifetime on the donor's meter, for the premium credit.
    lifetime: SimDuration,
}

/// A successful acquisition: one warm instance handed to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolGrant {
    /// The job that donated the capacity.
    pub donor_job: u64,
    /// Physical identity of the instance. An adopter that later
    /// releases this instance back to the pool must offer it under
    /// this same id, so ownership stays traceable across handoffs.
    pub physical: u64,
    /// When the adopting job can start using the instance
    /// (acquisition time + [`PoolConfig::handoff_secs`]).
    pub usable_at: SimTime,
}

/// Mints the physical id for a job's own (never-adopted) instance:
/// local instance ids are per-job spaces, so the pair is globally
/// unique. Adopted instances keep the [`PoolGrant::physical`] they
/// arrived with instead.
pub fn physical_id(job: u64, instance: InstanceId) -> u64 {
    debug_assert!(instance.raw() < (1 << 32), "instance id overflows tag");
    (job << 32) | instance.raw()
}

/// Cumulative pool accounting. Every field is monotone; a serve report
/// snapshots this at the end of the run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    /// Instances offered by donors (accepted or not).
    pub offers: u64,
    /// Offers accepted and parked.
    pub parked: u64,
    /// Parked instances adopted by another request.
    pub handoffs: u64,
    /// Parked instances that timed out un-adopted, billed exactly the
    /// hold window.
    pub expirations: u64,
    /// Parked instances still inside their hold window when the pool
    /// was drained at end of run, billed their actual park time.
    pub drained: u64,
    /// Offers declined because the pool was at capacity.
    pub rejected_full: u64,
    /// Offers declined by the idempotency guard (same donor instance
    /// offered twice — e.g. a crafted double barrier).
    pub double_releases: u64,
    /// Offers rejected with [`RbError::PoolConflict`]: a different job
    /// offered an instance id that is currently parked.
    pub conflicts: u64,
    /// Minimum-charge premium credited back at handoff. Only lifetimes
    /// under the billing floor carry a premium; only handoffs credit it.
    pub min_charge_saved: Cost,
    /// Prorated cost of keeping instances parked (paid by the pool).
    pub park_cost: Cost,
    /// Data ingress the adopting jobs skipped (warm instances keep the
    /// shared dataset cache), in GB.
    pub ingress_gb_saved: f64,
    /// Dollar value of the skipped ingress under the pool's pricing.
    pub ingress_saved: Cost,
}

impl PoolStats {
    /// Net effect of running the pool: positive means the pool saved
    /// money overall (credits exceed park spend).
    pub fn net_saving(&self) -> Cost {
        self.min_charge_saved + self.ingress_saved - self.park_cost
    }

    /// Conservation invariant: every offer is accounted exactly once,
    /// and every parked instance leaves the pool exactly once.
    /// `parked_now` is the current [`InstancePool::parked_count`].
    pub fn balances(&self, parked_now: usize) -> bool {
        self.offers == self.parked + self.rejected_full + self.double_releases + self.conflicts
            && self.parked == self.handoffs + self.expirations + self.drained + parked_now as u64
    }
}

/// The shared pool: parked capacity, the double-release guard, and the
/// savings ledger. See the module docs for the accounting rules.
#[derive(Debug)]
pub struct InstancePool {
    config: PoolConfig,
    pricing: CloudPricing,
    parked: VecDeque<ParkedInstance>,
    /// Custody of every physical the pool has handed out or retired:
    /// who may legally offer it next. Absent means the instance has
    /// never left the pool via a grant — its provisioner owns it.
    custody: BTreeMap<u64, Custody>,
    stats: PoolStats,
}

/// Where a physical instance went after leaving the parked queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Custody {
    /// Handed to this job at acquisition; only it may re-offer.
    Adopter(u64),
    /// Terminated by the pool at expiry or drain; any later offer is a
    /// use-after-free claim.
    Dead,
}

impl InstancePool {
    /// Creates an empty pool.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] if the configuration fails
    /// [`PoolConfig::validate`].
    pub fn new(config: PoolConfig, pricing: CloudPricing) -> Result<Self> {
        config.validate()?;
        Ok(InstancePool {
            config,
            pricing,
            parked: VecDeque::new(),
            custody: BTreeMap::new(),
            stats: PoolStats::default(),
        })
    }

    /// Number of instances currently parked.
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    /// Snapshot of the cumulative accounting.
    pub fn stats(&self) -> PoolStats {
        self.stats.clone()
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Offers a released instance to the pool. `physical` is the
    /// instance's stable physical id — [`physical_id`] for capacity
    /// the donor provisioned itself, or the [`PoolGrant::physical`] it
    /// arrived with if the donor adopted it. `lifetime` is the billed
    /// lifetime on the donor's meter (used for the premium credit at
    /// handoff); `donor_group` tags the entry with the donor's job
    /// group for affinity at [`InstancePool::acquire`]. Returns
    /// `Ok(true)` if the instance was parked; `Ok(false)` if the pool
    /// declined (full, or the double-release guard fired) — in which
    /// case the donor's termination simply stands.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::PoolConflict`] if the offer contradicts
    /// custody: `physical` is currently parked under a *different*
    /// donor job, or the pool last handed it to another job. Either
    /// way the offerer is making a stale claim on capacity whose
    /// ownership already moved on — re-parking it would park one
    /// physical instance twice and double-credit the ledger. The offer
    /// is rejected and counted in [`PoolStats::conflicts`]; the pool
    /// itself stays consistent.
    pub fn offer(
        &mut self,
        donor_job: u64,
        donor_group: Option<u64>,
        physical: u64,
        released_at: SimTime,
        lifetime: SimDuration,
    ) -> Result<bool> {
        self.stats.offers += 1;
        self.expire(released_at);
        if let Some(holder) = self.parked.iter().find(|e| e.physical == physical) {
            if holder.donor_job != donor_job {
                self.stats.conflicts += 1;
                return Err(RbError::PoolConflict(format!(
                    "instance {physical:#x} offered by job {donor_job} while parked by job {}",
                    holder.donor_job,
                )));
            }
            // Same physical release offered twice (double barrier /
            // reclaim race): crediting it again would double-count
            // the minimum-charge saving.
            self.stats.double_releases += 1;
            return Ok(false);
        }
        match self.custody.get(&physical) {
            Some(Custody::Dead) => {
                // The pool already terminated this instance at expiry
                // or drain: a use-after-free claim, declined.
                self.stats.double_releases += 1;
                return Ok(false);
            }
            Some(Custody::Adopter(job)) if *job != donor_job => {
                self.stats.conflicts += 1;
                return Err(RbError::PoolConflict(format!(
                    "instance {physical:#x} offered by job {donor_job} but custody moved to \
                     job {job} at handoff",
                )));
            }
            _ => {}
        }
        if self.parked.len() >= self.config.capacity {
            self.stats.rejected_full += 1;
            return Ok(false);
        }
        self.custody.remove(&physical);
        self.parked.push_back(ParkedInstance {
            donor_job,
            donor_group,
            physical,
            released_at,
            lifetime,
        });
        self.stats.parked += 1;
        Ok(true)
    }

    /// Acquires up to `n` warm instances for `job` scaling up at `now`.
    /// Only instances released at or before `now` are eligible (a pool
    /// shared across interleaved virtual clocks must not hand a job
    /// capacity from its own future). Entries donated by the caller's
    /// own job group (`group`, when declared) go first, so
    /// barrier-released capacity flows between, say, one tenant's
    /// Hyperband brackets before being offered cross-tenant; within
    /// each class, oldest entries go first. Custody of each granted
    /// physical moves to `job`: only it may offer the instance back.
    ///
    /// `dataset_gb` is the ingress each granted instance lets the
    /// adopting job skip; it feeds the savings ledger.
    pub fn acquire(
        &mut self,
        job: u64,
        now: SimTime,
        n: usize,
        dataset_gb: f64,
        group: Option<u64>,
    ) -> Vec<PoolGrant> {
        self.expire(now);
        let mut take = vec![false; self.parked.len()];
        let mut remaining = n;
        if group.is_some() {
            for (i, entry) in self.parked.iter().enumerate() {
                if remaining == 0 {
                    break;
                }
                if entry.released_at <= now && entry.donor_group == group {
                    take[i] = true;
                    remaining -= 1;
                }
            }
        }
        for (i, entry) in self.parked.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            if !take[i] && entry.released_at <= now {
                take[i] = true;
                remaining -= 1;
            }
        }
        let mut grants = Vec::new();
        let mut kept = VecDeque::new();
        for (i, entry) in std::mem::take(&mut self.parked).into_iter().enumerate() {
            if take[i] {
                // Park bill: the instance idled from release to now.
                self.stats.park_cost += self
                    .pricing
                    .instance_hourly()
                    .per_hour_for(now - entry.released_at);
                // Premium credit: the donor paid the billing floor on a
                // lifetime this handoff proves was not churn.
                if self.pricing.billing.is_per_instance() {
                    let floored = self.pricing.instance_charge(entry.lifetime);
                    let exact = self.pricing.instance_hourly().per_hour_for(entry.lifetime);
                    self.stats.min_charge_saved += floored - exact;
                }
                if dataset_gb > 0.0 {
                    self.stats.ingress_gb_saved += dataset_gb;
                    self.stats.ingress_saved += self.pricing.ingress_charge(dataset_gb);
                }
                self.stats.handoffs += 1;
                self.custody.insert(entry.physical, Custody::Adopter(job));
                grants.push(PoolGrant {
                    donor_job: entry.donor_job,
                    physical: entry.physical,
                    usable_at: now + SimDuration::from_secs_f64(self.config.handoff_secs),
                });
            } else {
                kept.push_back(entry);
            }
        }
        self.parked = kept;
        grants
    }

    /// Terminates parked instances whose hold window has ended at
    /// `now`, billing exactly the hold window to the pool. The
    /// boundary is inclusive: an instance held for the full
    /// `max_hold_secs` is expired, so an `acquire` at that same
    /// instant must never be granted stale capacity.
    pub fn expire(&mut self, now: SimTime) {
        let hold = SimDuration::from_secs_f64(self.config.max_hold_secs);
        let mut kept = VecDeque::new();
        while let Some(entry) = self.parked.pop_front() {
            if now >= entry.released_at + hold {
                self.stats.park_cost += self.pricing.instance_hourly().per_hour_for(hold);
                self.stats.expirations += 1;
                self.custody.insert(entry.physical, Custody::Dead);
            } else {
                kept.push_back(entry);
            }
        }
        self.parked = kept;
    }

    /// Parked instances a job stepping at `now` could adopt: released
    /// at or before `now` and still inside their hold window. Used by
    /// pool-aware admission to decide whether a queued job's first
    /// stage could be served entirely from parked capacity.
    pub fn eligible_count(&self, now: SimTime) -> usize {
        let hold = SimDuration::from_secs_f64(self.config.max_hold_secs);
        self.parked
            .iter()
            .filter(|e| e.released_at <= now && now < e.released_at + hold)
            .count()
    }

    /// Ends the pool's life at `now`: entries whose hold window has
    /// already ended expire normally (billed exactly the hold window —
    /// not up to this later drain call), and every instance still
    /// inside its window is terminated and billed its actual park
    /// time.
    pub fn drain(&mut self, now: SimTime) {
        self.expire(now);
        while let Some(entry) = self.parked.pop_front() {
            let held = now - entry.released_at;
            self.stats.park_cost += self.pricing.instance_hourly().per_hour_for(held);
            self.stats.drained += 1;
            self.custody.insert(entry.physical, Custody::Dead);
        }
    }
}

/// A cloneable handle to a pool shared by many jobs' cluster managers.
///
/// The mutex is uncontended in practice — the serve loop is
/// single-threaded over virtual time — but it keeps `ClusterManager`
/// `Send` and the handle trivially cloneable.
#[derive(Debug, Clone)]
pub struct SharedPool {
    inner: Arc<Mutex<InstancePool>>,
}

impl SharedPool {
    /// Wraps a pool for sharing.
    pub fn new(pool: InstancePool) -> Self {
        SharedPool {
            inner: Arc::new(Mutex::new(pool)),
        }
    }

    /// Runs `f` with exclusive access to the pool.
    pub fn with<R>(&self, f: impl FnOnce(&mut InstancePool) -> R) -> R {
        let mut guard = self.inner.lock().expect("shared pool poisoned");
        f(&mut guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::P3_8XLARGE;

    fn pricing() -> CloudPricing {
        CloudPricing::on_demand(P3_8XLARGE)
    }

    fn pool(capacity: usize) -> InstancePool {
        InstancePool::new(
            PoolConfig {
                capacity,
                max_hold_secs: 120.0,
                handoff_secs: 2.0,
            },
            pricing(),
        )
        .unwrap()
    }

    #[test]
    fn zero_capacity_pool_is_a_typed_error() {
        let err = InstancePool::new(
            PoolConfig {
                capacity: 0,
                ..PoolConfig::default()
            },
            pricing(),
        )
        .unwrap_err();
        assert!(matches!(err, RbError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn nan_hold_is_a_typed_error() {
        let err = PoolConfig {
            max_hold_secs: f64::NAN,
            ..PoolConfig::default()
        }
        .validate()
        .unwrap_err();
        assert!(matches!(err, RbError::InvalidConfig(_)));
    }

    #[test]
    fn handoff_credits_min_charge_premium_once() {
        let mut p = pool(4);
        // 10 s billed lifetime: the donor paid the 60 s floor, so the
        // premium is 50 s of hourly rate.
        assert!(p
            .offer(
                1,
                None,
                0,
                SimTime::from_secs(100),
                SimDuration::from_secs(10),
            )
            .unwrap());
        let grants = p.acquire(9, SimTime::from_secs(100), 1, 0.0, None);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].donor_job, 1);
        assert_eq!(grants[0].usable_at, SimTime::from_secs(102));
        let hourly = pricing().instance_hourly();
        let expected = hourly.per_hour_for(SimDuration::from_secs(60))
            - hourly.per_hour_for(SimDuration::from_secs(10));
        assert_eq!(p.stats().min_charge_saved, expected);
        // Zero park time: released and adopted at the same instant.
        assert_eq!(p.stats().park_cost, Cost::ZERO);
    }

    #[test]
    fn double_release_does_not_double_credit() {
        // A crafted double barrier: the watchdog's forced barrier and
        // the regular stage barrier both release instance 3 of job 7.
        let mut p = pool(4);
        let life = SimDuration::from_secs(5);
        assert!(p
            .offer(7, None, 3, SimTime::from_secs(50), life)
            .unwrap());
        assert!(!p
            .offer(7, None, 3, SimTime::from_secs(55), life)
            .unwrap());
        assert_eq!(p.stats().double_releases, 1);
        assert_eq!(p.parked_count(), 1);
        // After the one real entry is handed off to job 9, custody
        // moved: the original donor's third offer is a stale claim,
        // now a typed conflict rather than a silent decline.
        let grants = p.acquire(9, SimTime::from_secs(60), 2, 0.0, None);
        assert_eq!(grants.len(), 1);
        let err = p
            .offer(7, None, 3, SimTime::from_secs(70), life)
            .unwrap_err();
        assert!(matches!(err, RbError::PoolConflict(_)), "{err:?}");
        let hourly = pricing().instance_hourly();
        let one_premium = hourly.per_hour_for(SimDuration::from_secs(60))
            - hourly.per_hour_for(SimDuration::from_secs(5));
        assert_eq!(p.stats().min_charge_saved, one_premium);
        // The adopter itself re-parking the physical it was granted is
        // a new, legitimate release.
        assert!(p
            .offer(9, None, 3, SimTime::from_secs(70), life)
            .unwrap());
        assert!(p.stats().balances(p.parked_count()));
    }

    #[test]
    fn cross_job_offer_of_a_parked_id_is_a_typed_error() {
        // A handoff chain gone stale: job 2 adopted physical instance
        // 3 from job 1 and re-parked it; job 1's crafted double
        // barrier then re-offers the same physical id. The stale claim
        // must be rejected, not silently re-parked.
        let mut p = pool(4);
        let life = SimDuration::from_secs(5);
        assert!(p.offer(2, None, 3, SimTime::from_secs(10), life).unwrap());
        let err = p.offer(1, None, 3, SimTime::from_secs(12), life).unwrap_err();
        assert!(matches!(err, RbError::PoolConflict(_)), "{err:?}");
        assert_eq!(p.stats().conflicts, 1);
        assert_eq!(p.parked_count(), 1, "conflicting offer must not re-park");
        // Once the entry is handed off, custody is with its next
        // owner (job 5), whose release is legitimate.
        assert_eq!(p.acquire(5, SimTime::from_secs(20), 1, 0.0, None).len(), 1);
        assert!(p.offer(5, None, 3, SimTime::from_secs(25), life).unwrap());
        assert!(p.stats().balances(p.parked_count()));
    }

    #[test]
    fn adoption_transfers_custody_so_re_parking_is_legal() {
        let mut p = pool(4);
        let life = SimDuration::from_secs(10);
        let t = SimTime::from_secs;
        // Job 1 parks physical 7, adopts it back at its next scale-up,
        // and parks it again: a legal down-up-down cycle, not a double
        // release.
        assert!(p.offer(1, None, 7, t(0), life).unwrap());
        assert_eq!(p.acquire(1, t(10), 1, 0.0, None).len(), 1);
        assert!(p.offer(1, None, 7, t(20), life).unwrap());
        assert_eq!(p.stats().double_releases, 0);
        // Job 2 adopts it; job 1's claim is now stale and typed.
        assert_eq!(p.acquire(2, t(30), 1, 0.0, None).len(), 1);
        let err = p.offer(1, None, 7, t(40), life).unwrap_err();
        assert!(matches!(err, RbError::PoolConflict(_)), "{err:?}");
        // Job 2's own re-park is legitimate...
        assert!(p.offer(2, None, 7, t(40), life).unwrap());
        // ...until the pool expires the instance: offering a physical
        // the pool already terminated is a use-after-free claim,
        // declined and counted as a double release.
        p.expire(t(400));
        assert!(!p.offer(2, None, 7, t(401), life).unwrap());
        let s = p.stats();
        assert_eq!((s.double_releases, s.conflicts, s.expirations), (1, 1, 1));
        assert!(s.balances(p.parked_count()));
    }

    #[test]
    fn group_affinity_grants_same_group_entries_first() {
        let mut p = pool(4);
        let life = SimDuration::from_secs(5);
        // Tenant group 1 parked first (older), group 2 second.
        assert!(p
            .offer(1, Some(1), 10, SimTime::from_secs(10), life)
            .unwrap());
        assert!(p
            .offer(2, Some(2), 20, SimTime::from_secs(20), life)
            .unwrap());
        // A group-2 bracket asking for one instance gets its sibling's
        // capacity even though the group-1 entry is older...
        let grants = p.acquire(6, SimTime::from_secs(30), 1, 0.0, Some(2));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].donor_job, 2);
        assert_eq!(grants[0].physical, 20);
        // ...and spills over to foreign entries once the group is dry.
        let grants = p.acquire(6, SimTime::from_secs(31), 1, 0.0, Some(2));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].donor_job, 1);
        // With no affinity declared, order is strictly oldest-first.
        assert!(p
            .offer(3, Some(3), 30, SimTime::from_secs(40), life)
            .unwrap());
        assert!(p
            .offer(4, Some(4), 40, SimTime::from_secs(50), life)
            .unwrap());
        let grants = p.acquire(6, SimTime::from_secs(55), 1, 0.0, None);
        assert_eq!(grants[0].donor_job, 3);
    }

    #[test]
    fn full_pool_declines() {
        let mut p = pool(1);
        let life = SimDuration::from_secs(30);
        assert!(p.offer(1, None, 0, SimTime::ZERO, life).unwrap());
        assert!(!p.offer(1, None, 1, SimTime::ZERO, life).unwrap());
        assert_eq!(p.stats().rejected_full, 1);
    }

    #[test]
    fn long_lifetimes_carry_no_premium() {
        let mut p = pool(4);
        assert!(p
            .offer(
                1,
                None,
                0,
                SimTime::from_secs(10),
                SimDuration::from_secs(300),
            )
            .unwrap());
        p.acquire(2, SimTime::from_secs(10), 1, 0.0, None);
        assert_eq!(p.stats().min_charge_saved, Cost::ZERO);
        assert_eq!(p.stats().handoffs, 1);
    }

    #[test]
    fn acquire_ignores_future_releases() {
        let mut p = pool(4);
        let life = SimDuration::from_secs(10);
        assert!(p
            .offer(2, None, 0, SimTime::from_secs(500), life)
            .unwrap());
        // A job whose clock is at t=100 must not adopt capacity that
        // will only exist at t=500.
        assert!(p.acquire(3, SimTime::from_secs(100), 1, 0.0, None).is_empty());
        assert_eq!(p.acquire(3, SimTime::from_secs(500), 1, 0.0, None).len(), 1);
    }

    #[test]
    fn expiry_bills_park_time_and_credits_nothing() {
        let mut p = pool(4);
        let life = SimDuration::from_secs(10);
        assert!(p.offer(1, None, 0, SimTime::ZERO, life).unwrap());
        // 120 s hold window: gone by t=121.
        assert!(p.acquire(2, SimTime::from_secs(121), 1, 0.0, None).is_empty());
        let s = p.stats();
        assert_eq!(s.expirations, 1);
        assert_eq!(s.min_charge_saved, Cost::ZERO);
        assert_eq!(
            s.park_cost,
            pricing()
                .instance_hourly()
                .per_hour_for(SimDuration::from_secs(120))
        );
    }

    #[test]
    fn instance_at_exactly_max_hold_is_not_granted() {
        // Boundary audit: at now == released_at + max_hold the hold
        // window has fully elapsed — an acquire at that instant must
        // expire the entry, not hand out stale capacity.
        let mut p = pool(4);
        let life = SimDuration::from_secs(10);
        assert!(p.offer(1, None, 0, SimTime::ZERO, life).unwrap());
        assert_eq!(p.eligible_count(SimTime::from_secs(119)), 1);
        assert_eq!(p.eligible_count(SimTime::from_secs(120)), 0);
        assert!(p.acquire(2, SimTime::from_secs(120), 1, 0.0, None).is_empty());
        let s = p.stats();
        assert_eq!(s.expirations, 1);
        assert_eq!(s.handoffs, 0);
        assert_eq!(
            s.park_cost,
            pricing()
                .instance_hourly()
                .per_hour_for(SimDuration::from_secs(120))
        );
        assert!(s.balances(p.parked_count()));
    }

    #[test]
    fn drain_bills_expired_entries_only_up_to_expiry() {
        // Billing audit: an entry whose hold window ended at t=120 and
        // that is drained at t=500 is billed 120 s of park, not 500.
        let mut p = pool(4);
        let life = SimDuration::from_secs(10);
        assert!(p.offer(1, None, 0, SimTime::ZERO, life).unwrap());
        p.drain(SimTime::from_secs(500));
        let s = p.stats();
        assert_eq!(s.expirations, 1);
        assert_eq!(s.drained, 0);
        assert_eq!(
            s.park_cost,
            pricing()
                .instance_hourly()
                .per_hour_for(SimDuration::from_secs(120)),
            "park billed past the hold window"
        );
        assert!(s.balances(p.parked_count()));
    }

    #[test]
    fn drain_terminates_everything() {
        let mut p = pool(4);
        let life = SimDuration::from_secs(10);
        p.offer(1, None, 0, SimTime::from_secs(100), life)
            .unwrap();
        p.offer(1, None, 1, SimTime::from_secs(100), life)
            .unwrap();
        p.drain(SimTime::from_secs(160));
        assert_eq!(p.parked_count(), 0);
        let s = p.stats();
        // Both entries were still inside their hold window: billed
        // their actual 60 s park and counted as drained, not expired.
        assert_eq!(s.drained, 2);
        assert_eq!(s.expirations, 0);
        assert_eq!(
            s.park_cost,
            pricing()
                .instance_hourly()
                .per_hour_for(SimDuration::from_secs(60))
                * 2
        );
        assert!(s.balances(p.parked_count()));
    }

    #[test]
    fn stats_balance_through_a_mixed_history() {
        // offered = parked + rejected_full + double_releases + conflicts
        // parked  = handoffs + expirations + drained + still-parked,
        // maintained through every outcome the pool can produce.
        let mut p = pool(2);
        let life = SimDuration::from_secs(10);
        let t = SimTime::from_secs;
        assert!(p.offer(1, Some(1), 100, t(0), life).unwrap());
        assert!(p.offer(2, Some(1), 200, t(1), life).unwrap());
        // Full (capacity 2).
        assert!(!p.offer(3, None, 300, t(2), life).unwrap());
        // Double release by job 1.
        assert!(!p.offer(1, Some(1), 100, t(3), life).unwrap());
        // Cross-job conflict: job 9 makes a stale claim on physical
        // 200, currently parked by job 2.
        assert!(p.offer(9, None, 200, t(4), life).is_err());
        // One handoff, then time runs past the hold window for the
        // rest, then drain.
        assert_eq!(p.acquire(8, t(5), 1, 0.0, Some(1)).len(), 1);
        assert!(p.offer(4, None, 700, t(100), life).unwrap());
        p.expire(t(130)); // expires the t=1 entry (held 120 s < 129 s)
        p.drain(t(150)); // drains the t=100 entry (held 50 s)
        let s = p.stats();
        assert_eq!(s.offers, 6);
        assert_eq!(
            (s.parked, s.rejected_full, s.double_releases, s.conflicts),
            (3, 1, 1, 1)
        );
        assert_eq!((s.handoffs, s.expirations, s.drained), (1, 1, 1));
        assert_eq!(p.parked_count(), 0);
        assert!(s.balances(p.parked_count()));
    }

    #[test]
    fn ingress_savings_are_ledgered() {
        let p_cfg = PoolConfig::default();
        let mut p =
            InstancePool::new(p_cfg, pricing().with_data_price(Cost::from_dollars(0.01))).unwrap();
        p.offer(
            1,
            None,
            0,
            SimTime::ZERO,
            SimDuration::from_secs(10),
        )
        .unwrap();
        p.acquire(2, SimTime::ZERO, 1, 150.0, None);
        let s = p.stats();
        assert_eq!(s.ingress_gb_saved, 150.0);
        assert_eq!(s.ingress_saved, Cost::from_dollars(1.50));
        assert!(s.net_saving() > Cost::ZERO);
    }

    #[test]
    fn shared_handle_round_trips() {
        let sp = SharedPool::new(pool(2));
        sp.with(|p| {
            p.offer(
                1,
                None,
                0,
                SimTime::ZERO,
                SimDuration::from_secs(5),
            )
            .unwrap()
        });
        assert_eq!(sp.with(|p| p.parked_count()), 1);
        let cloned = sp.clone();
        assert_eq!(cloned.with(|p| p.parked_count()), 1);
    }
}
