//! Always-on cache instrumentation for the prediction engine.
//!
//! The plan cache and the stage-sample memo were previously
//! unobservable: a warm-path speedup in the benchmarks could not be
//! attributed to an actual hit rate. These counters are plain relaxed
//! atomics — a few nanoseconds per lookup, shared by clones through the
//! same `Arc`s as the caches they describe — and feed the
//! [`rb_obs::CacheStats`] snapshots surfaced in `RunSummary`.
//!
//! Counting is strictly passive: no counter value ever influences a
//! cache decision, so predictions stay bit-identical whether anyone
//! reads them or not.

use rb_obs::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Hit/miss/eviction tallies for one cache. All operations use relaxed
/// ordering: the counts are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheCounters {
    /// A zeroed counter set. `const` so counters can live in `static`
    /// position (e.g. the process-wide arena warm/cold tally).
    pub const fn new() -> CacheCounters {
        CacheCounters {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Records `n` lookups served from the cache.
    pub fn hits_add(&self, n: u64) {
        if n > 0 {
            self.hits.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `n` lookups that had to compute.
    pub fn misses_add(&self, n: u64) {
        if n > 0 {
            self.misses.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `n` entries dropped by eviction.
    pub fn evictions_add(&self, n: u64) {
        if n > 0 {
            self.evictions.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current totals.
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = CacheCounters::default();
        c.hits_add(2);
        c.misses_add(1);
        c.hits_add(3);
        c.evictions_add(10);
        c.hits_add(0); // no-op
        let snap = c.snapshot();
        assert_eq!(snap.hits, 5);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.evictions, 10);
        assert!((snap.hit_rate() - 5.0 / 6.0).abs() < 1e-12);
    }
}
