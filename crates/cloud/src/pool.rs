//! A shared elastic instance pool for multi-job serving.
//!
//! RubberBand's cost argument (§3: avoid the 60 s minimum charge and
//! hand-over latency for capacity you churn) compounds across jobs:
//! capacity released at one job's down-scaling barrier is exactly the
//! warm capacity another job is about to provision. The
//! [`InstancePool`] models that handoff. A job that scales down
//! *offers* its released instances to the pool instead of letting them
//! vanish; a job that scales up *acquires* parked capacity before
//! asking the provider for fresh instances.
//!
//! Accounting is deliberately explicit, because the savings claim is
//! the whole point:
//!
//! * every donor terminates the instance **on its own meter** — its
//!   [`crate::BillingMeter`] bill is exactly what it would have been
//!   without a pool, minimum-charge floor included;
//! * at *handoff* (and only then) the pool credits back the donor's
//!   minimum-charge premium — the difference between the floored and
//!   the exact charge — because economically the instance kept
//!   running instead of being churned. A parked entry that expires
//!   un-adopted credits nothing;
//! * the pool pays for the park itself: prorated hourly cost for the
//!   time each instance sits idle between release and adoption (or
//!   expiry). Pooling is only a net win when handoffs actually happen
//!   — [`PoolStats`] exposes both sides so a serve report can show
//!   `net = billed − saved + park`.
//!
//! The double-release guard is load-bearing: a crafted double barrier
//! (a watchdog split followed by the regular stage barrier, or a spot
//! reclaim racing the executor's own release) can offer the same
//! instance twice. The second offer must be rejected, or the
//! minimum-charge saving would be credited twice for one instance.
//!
//! All pool state is deterministic: offers append in call order,
//! acquisition scans oldest-first, and nothing here draws randomness.

use crate::pricing::CloudPricing;
use rb_core::{Cost, InstanceId, RbError, Result, SimDuration, SimTime};
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Static configuration of a shared pool.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum instances parked at once. Offers beyond this are
    /// declined (the donor's termination stands). Must be positive: a
    /// zero-capacity pool silently degrades every handoff to a decline,
    /// which is indistinguishable from "pool off" except for the park
    /// bookkeeping — [`PoolConfig::validate`] rejects it instead.
    pub capacity: usize,
    /// How long a parked instance is held before the pool gives up and
    /// terminates it (paying the park cost with nothing to show).
    pub max_hold_secs: f64,
    /// Handoff latency: seconds between acquisition and the instance
    /// being usable by the adopting job (state scrub + reattach). Far
    /// below fresh-provision delay + init latency, which is the point.
    pub handoff_secs: f64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            capacity: 8,
            max_hold_secs: 120.0,
            handoff_secs: 2.0,
        }
    }
}

impl PoolConfig {
    /// Checks the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] for a zero-capacity pool or a
    /// non-finite/negative hold or handoff time.
    pub fn validate(&self) -> Result<()> {
        if self.capacity == 0 {
            return Err(RbError::InvalidConfig(
                "shared pool capacity must be positive (zero would silently decline every \
                 handoff; disable the pool instead)"
                    .into(),
            ));
        }
        for (what, v) in [
            ("max_hold_secs", self.max_hold_secs),
            ("handoff_secs", self.handoff_secs),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(RbError::InvalidConfig(format!(
                    "shared pool: {what} must be finite and non-negative, got {v}"
                )));
            }
        }
        Ok(())
    }
}

/// One parked instance awaiting adoption.
#[derive(Debug, Clone)]
struct ParkedInstance {
    donor_job: u64,
    released_at: SimTime,
    /// Billed lifetime on the donor's meter, for the premium credit.
    lifetime: SimDuration,
}

/// A successful acquisition: one warm instance handed to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolGrant {
    /// The job that donated the capacity.
    pub donor_job: u64,
    /// When the adopting job can start using the instance
    /// (acquisition time + [`PoolConfig::handoff_secs`]).
    pub usable_at: SimTime,
}

/// Cumulative pool accounting. Every field is monotone; a serve report
/// snapshots this at the end of the run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    /// Instances offered by donors (accepted or not).
    pub offers: u64,
    /// Offers accepted and parked.
    pub parked: u64,
    /// Parked instances adopted by another request.
    pub handoffs: u64,
    /// Parked instances that timed out un-adopted.
    pub expirations: u64,
    /// Offers declined because the pool was at capacity.
    pub rejected_full: u64,
    /// Offers declined by the idempotency guard (same donor instance
    /// offered twice — e.g. a crafted double barrier).
    pub double_releases: u64,
    /// Minimum-charge premium credited back at handoff. Only lifetimes
    /// under the billing floor carry a premium; only handoffs credit it.
    pub min_charge_saved: Cost,
    /// Prorated cost of keeping instances parked (paid by the pool).
    pub park_cost: Cost,
    /// Data ingress the adopting jobs skipped (warm instances keep the
    /// shared dataset cache), in GB.
    pub ingress_gb_saved: f64,
    /// Dollar value of the skipped ingress under the pool's pricing.
    pub ingress_saved: Cost,
}

impl PoolStats {
    /// Net effect of running the pool: positive means the pool saved
    /// money overall (credits exceed park spend).
    pub fn net_saving(&self) -> Cost {
        self.min_charge_saved + self.ingress_saved - self.park_cost
    }
}

/// The shared pool: parked capacity, the double-release guard, and the
/// savings ledger. See the module docs for the accounting rules.
#[derive(Debug)]
pub struct InstancePool {
    config: PoolConfig,
    pricing: CloudPricing,
    parked: VecDeque<ParkedInstance>,
    /// Idempotency guard: `(donor job, donor-local instance id)` pairs
    /// ever offered. Instance ids are per-provider (per-job) spaces, so
    /// the pair is the identity of one physical release.
    seen: BTreeSet<(u64, u64)>,
    stats: PoolStats,
}

impl InstancePool {
    /// Creates an empty pool.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] if the configuration fails
    /// [`PoolConfig::validate`].
    pub fn new(config: PoolConfig, pricing: CloudPricing) -> Result<Self> {
        config.validate()?;
        Ok(InstancePool {
            config,
            pricing,
            parked: VecDeque::new(),
            seen: BTreeSet::new(),
            stats: PoolStats::default(),
        })
    }

    /// Number of instances currently parked.
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    /// Snapshot of the cumulative accounting.
    pub fn stats(&self) -> PoolStats {
        self.stats.clone()
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Offers a released instance to the pool. `lifetime` is the billed
    /// lifetime on the donor's meter (used for the premium credit at
    /// handoff). Returns `true` if the instance was parked; `false` if
    /// the pool declined (full, or the double-release guard fired) — in
    /// which case the donor's termination simply stands.
    pub fn offer(
        &mut self,
        donor_job: u64,
        instance: InstanceId,
        released_at: SimTime,
        lifetime: SimDuration,
    ) -> bool {
        self.stats.offers += 1;
        self.expire(released_at);
        if !self.seen.insert((donor_job, instance.raw())) {
            // Same physical release offered twice (double barrier /
            // reclaim race): crediting it again would double-count the
            // minimum-charge saving.
            self.stats.double_releases += 1;
            return false;
        }
        if self.parked.len() >= self.config.capacity {
            self.stats.rejected_full += 1;
            return false;
        }
        self.parked.push_back(ParkedInstance {
            donor_job,
            released_at,
            lifetime,
        });
        self.stats.parked += 1;
        true
    }

    /// Acquires up to `n` warm instances for a job scaling up at `now`.
    /// Only instances released at or before `now` are eligible (a pool
    /// shared across interleaved virtual clocks must not hand a job
    /// capacity from its own future). Oldest eligible entries go first.
    ///
    /// `dataset_gb` is the ingress each granted instance lets the
    /// adopting job skip; it feeds the savings ledger.
    pub fn acquire(&mut self, now: SimTime, n: usize, dataset_gb: f64) -> Vec<PoolGrant> {
        self.expire(now);
        let mut grants = Vec::new();
        let mut kept = VecDeque::new();
        while let Some(entry) = self.parked.pop_front() {
            if grants.len() < n && entry.released_at <= now {
                // Park bill: the instance idled from release to now.
                self.stats.park_cost += self
                    .pricing
                    .instance_hourly()
                    .per_hour_for(now - entry.released_at);
                // Premium credit: the donor paid the billing floor on a
                // lifetime this handoff proves was not churn.
                if self.pricing.billing.is_per_instance() {
                    let floored = self.pricing.instance_charge(entry.lifetime);
                    let exact = self.pricing.instance_hourly().per_hour_for(entry.lifetime);
                    self.stats.min_charge_saved += floored - exact;
                }
                if dataset_gb > 0.0 {
                    self.stats.ingress_gb_saved += dataset_gb;
                    self.stats.ingress_saved += self.pricing.ingress_charge(dataset_gb);
                }
                self.stats.handoffs += 1;
                grants.push(PoolGrant {
                    donor_job: entry.donor_job,
                    usable_at: now + SimDuration::from_secs_f64(self.config.handoff_secs),
                });
            } else {
                kept.push_back(entry);
            }
        }
        self.parked = kept;
        grants
    }

    /// Terminates parked instances whose hold window ended before
    /// `now`, billing their park time to the pool.
    pub fn expire(&mut self, now: SimTime) {
        let hold = SimDuration::from_secs_f64(self.config.max_hold_secs);
        let mut kept = VecDeque::new();
        while let Some(entry) = self.parked.pop_front() {
            if entry.released_at + hold < now {
                self.stats.park_cost += self.pricing.instance_hourly().per_hour_for(hold);
                self.stats.expirations += 1;
            } else {
                kept.push_back(entry);
            }
        }
        self.parked = kept;
    }

    /// Ends the pool's life at `now`: every remaining parked instance
    /// is terminated and its park time billed.
    pub fn drain(&mut self, now: SimTime) {
        while let Some(entry) = self.parked.pop_front() {
            let held = now - entry.released_at;
            self.stats.park_cost += self.pricing.instance_hourly().per_hour_for(held);
            self.stats.expirations += 1;
        }
    }
}

/// A cloneable handle to a pool shared by many jobs' cluster managers.
///
/// The mutex is uncontended in practice — the serve loop is
/// single-threaded over virtual time — but it keeps `ClusterManager`
/// `Send` and the handle trivially cloneable.
#[derive(Debug, Clone)]
pub struct SharedPool {
    inner: Arc<Mutex<InstancePool>>,
}

impl SharedPool {
    /// Wraps a pool for sharing.
    pub fn new(pool: InstancePool) -> Self {
        SharedPool {
            inner: Arc::new(Mutex::new(pool)),
        }
    }

    /// Runs `f` with exclusive access to the pool.
    pub fn with<R>(&self, f: impl FnOnce(&mut InstancePool) -> R) -> R {
        let mut guard = self.inner.lock().expect("shared pool poisoned");
        f(&mut guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::P3_8XLARGE;

    fn pricing() -> CloudPricing {
        CloudPricing::on_demand(P3_8XLARGE)
    }

    fn pool(capacity: usize) -> InstancePool {
        InstancePool::new(
            PoolConfig {
                capacity,
                max_hold_secs: 120.0,
                handoff_secs: 2.0,
            },
            pricing(),
        )
        .unwrap()
    }

    #[test]
    fn zero_capacity_pool_is_a_typed_error() {
        let err = InstancePool::new(
            PoolConfig {
                capacity: 0,
                ..PoolConfig::default()
            },
            pricing(),
        )
        .unwrap_err();
        assert!(matches!(err, RbError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn nan_hold_is_a_typed_error() {
        let err = PoolConfig {
            max_hold_secs: f64::NAN,
            ..PoolConfig::default()
        }
        .validate()
        .unwrap_err();
        assert!(matches!(err, RbError::InvalidConfig(_)));
    }

    #[test]
    fn handoff_credits_min_charge_premium_once() {
        let mut p = pool(4);
        // 10 s billed lifetime: the donor paid the 60 s floor, so the
        // premium is 50 s of hourly rate.
        assert!(p.offer(
            1,
            InstanceId::new(0),
            SimTime::from_secs(100),
            SimDuration::from_secs(10),
        ));
        let grants = p.acquire(SimTime::from_secs(100), 1, 0.0);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].donor_job, 1);
        assert_eq!(grants[0].usable_at, SimTime::from_secs(102));
        let hourly = pricing().instance_hourly();
        let expected = hourly.per_hour_for(SimDuration::from_secs(60))
            - hourly.per_hour_for(SimDuration::from_secs(10));
        assert_eq!(p.stats().min_charge_saved, expected);
        // Zero park time: released and adopted at the same instant.
        assert_eq!(p.stats().park_cost, Cost::ZERO);
    }

    #[test]
    fn double_release_does_not_double_credit() {
        // A crafted double barrier: the watchdog's forced barrier and
        // the regular stage barrier both release instance 3 of job 7.
        let mut p = pool(4);
        let life = SimDuration::from_secs(5);
        assert!(p.offer(7, InstanceId::new(3), SimTime::from_secs(50), life));
        assert!(!p.offer(7, InstanceId::new(3), SimTime::from_secs(55), life));
        assert_eq!(p.stats().double_releases, 1);
        assert_eq!(p.parked_count(), 1);
        // Even after the one real entry is handed off, a third offer of
        // the same release is still rejected — the guard is permanent.
        let grants = p.acquire(SimTime::from_secs(60), 2, 0.0);
        assert_eq!(grants.len(), 1);
        assert!(!p.offer(7, InstanceId::new(3), SimTime::from_secs(70), life));
        let hourly = pricing().instance_hourly();
        let one_premium = hourly.per_hour_for(SimDuration::from_secs(60))
            - hourly.per_hour_for(SimDuration::from_secs(5));
        assert_eq!(p.stats().min_charge_saved, one_premium);
        // Same instance id from a *different* job is a different
        // physical release and is accepted.
        assert!(p.offer(8, InstanceId::new(3), SimTime::from_secs(70), life));
    }

    #[test]
    fn full_pool_declines() {
        let mut p = pool(1);
        let life = SimDuration::from_secs(30);
        assert!(p.offer(1, InstanceId::new(0), SimTime::ZERO, life));
        assert!(!p.offer(1, InstanceId::new(1), SimTime::ZERO, life));
        assert_eq!(p.stats().rejected_full, 1);
    }

    #[test]
    fn long_lifetimes_carry_no_premium() {
        let mut p = pool(4);
        assert!(p.offer(
            1,
            InstanceId::new(0),
            SimTime::from_secs(10),
            SimDuration::from_secs(300),
        ));
        p.acquire(SimTime::from_secs(10), 1, 0.0);
        assert_eq!(p.stats().min_charge_saved, Cost::ZERO);
        assert_eq!(p.stats().handoffs, 1);
    }

    #[test]
    fn acquire_ignores_future_releases() {
        let mut p = pool(4);
        let life = SimDuration::from_secs(10);
        assert!(p.offer(2, InstanceId::new(0), SimTime::from_secs(500), life));
        // A job whose clock is at t=100 must not adopt capacity that
        // will only exist at t=500.
        assert!(p.acquire(SimTime::from_secs(100), 1, 0.0).is_empty());
        assert_eq!(p.acquire(SimTime::from_secs(500), 1, 0.0).len(), 1);
    }

    #[test]
    fn expiry_bills_park_time_and_credits_nothing() {
        let mut p = pool(4);
        let life = SimDuration::from_secs(10);
        assert!(p.offer(1, InstanceId::new(0), SimTime::ZERO, life));
        // 120 s hold window: gone by t=121.
        assert!(p.acquire(SimTime::from_secs(121), 1, 0.0).is_empty());
        let s = p.stats();
        assert_eq!(s.expirations, 1);
        assert_eq!(s.min_charge_saved, Cost::ZERO);
        assert_eq!(
            s.park_cost,
            pricing()
                .instance_hourly()
                .per_hour_for(SimDuration::from_secs(120))
        );
    }

    #[test]
    fn drain_terminates_everything() {
        let mut p = pool(4);
        let life = SimDuration::from_secs(10);
        p.offer(1, InstanceId::new(0), SimTime::from_secs(100), life);
        p.offer(1, InstanceId::new(1), SimTime::from_secs(100), life);
        p.drain(SimTime::from_secs(160));
        assert_eq!(p.parked_count(), 0);
        let s = p.stats();
        assert_eq!(s.expirations, 2);
        assert_eq!(
            s.park_cost,
            pricing()
                .instance_hourly()
                .per_hour_for(SimDuration::from_secs(60))
                * 2
        );
    }

    #[test]
    fn ingress_savings_are_ledgered() {
        let p_cfg = PoolConfig::default();
        let mut p =
            InstancePool::new(p_cfg, pricing().with_data_price(Cost::from_dollars(0.01))).unwrap();
        p.offer(
            1,
            InstanceId::new(0),
            SimTime::ZERO,
            SimDuration::from_secs(10),
        );
        p.acquire(SimTime::ZERO, 1, 150.0);
        let s = p.stats();
        assert_eq!(s.ingress_gb_saved, 150.0);
        assert_eq!(s.ingress_saved, Cost::from_dollars(1.50));
        assert!(s.net_saving() > Cost::ZERO);
    }

    #[test]
    fn shared_handle_round_trips() {
        let sp = SharedPool::new(pool(2));
        sp.with(|p| {
            p.offer(
                1,
                InstanceId::new(0),
                SimTime::ZERO,
                SimDuration::from_secs(5),
            )
        });
        assert_eq!(sp.with(|p| p.parked_count()), 1);
        let cloned = sp.clone();
        assert_eq!(cloned.with(|p| p.parked_count()), 1);
    }
}
