//! The communication-aware analytic scaling model.
//!
//! Serves as the "physical truth" of data-parallel training in this
//! reproduction: the profiler measures it, the planner plans against the
//! fitted measurements, and the executor runs on it. One iteration of
//! synchronous data-parallel SGD on `g` GPUs with global batch `B` costs
//!
//! ```text
//! L(g) = compute(g) + allreduce(g) + fixed_overhead
//! compute(g)   = ceil(B/g) / per_gpu_rate + (microsteps-1) · microstep_overhead
//! allreduce(g) = 2(g-1)/g · grad_bytes / bandwidth(g, placement)     (g > 1)
//! ```
//!
//! Strong scaling is assumed (§3): the global batch is fixed, and when the
//! per-GPU share exceeds accelerator memory the model pays for gradient
//! accumulation micro-steps instead of changing the batch. Bandwidth is
//! NVLink-class while the gang fits on one machine, network-class once it
//! spans machines, and severely degraded when workers are scattered without
//! placement control — reproducing both Fig. 4 and the Table 1 ablation.

use crate::zoo::ModelArch;
use crate::{PlacementQuality, ScalingModel};

/// Analytic iteration-latency model for one (architecture, batch size,
/// machine shape) combination.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticScaling {
    arch: ModelArch,
    batch_size: u32,
    node_gpus: u32,
    intra_node_bw_gbps: f64,
    inter_node_bw_gbps: f64,
    scattered_bw_gbps: f64,
    scattered_overhead_factor: f64,
}

impl AnalyticScaling {
    /// Creates a model for `arch` training with global batch `batch_size`
    /// on machines with `node_gpus` GPUs each, using V100-class bandwidth
    /// defaults (NVLink 25 GB/s intra-node, 25 Gbit/s network).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` or `node_gpus` is zero.
    pub fn for_arch(arch: &ModelArch, batch_size: u32, node_gpus: u32) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(node_gpus > 0, "node GPU count must be positive");
        let inter = 3.125;
        AnalyticScaling {
            arch: arch.clone(),
            batch_size,
            node_gpus,
            intra_node_bw_gbps: 25.0,
            inter_node_bw_gbps: inter,
            // Untuned, contended cross-node all-reduce achieves a fraction
            // of line rate in practice; 1/8 reproduces Table 1's measured
            // no-placement throughputs.
            scattered_bw_gbps: inter / 8.0,
            scattered_overhead_factor: 1.10,
        }
    }

    /// Overrides the intra-node and inter-node bandwidths (GB/s).
    pub fn with_bandwidths(mut self, intra_gbps: f64, inter_gbps: f64) -> Self {
        self.intra_node_bw_gbps = intra_gbps;
        self.inter_node_bw_gbps = inter_gbps;
        self.scattered_bw_gbps = inter_gbps / 8.0;
        self
    }

    /// The architecture descriptor.
    pub fn arch(&self) -> &ModelArch {
        &self.arch
    }

    /// GPUs per machine assumed by the bandwidth model.
    pub fn node_gpus(&self) -> u32 {
        self.node_gpus
    }

    /// Number of gradient-accumulation micro-steps on `gpus` GPUs.
    pub fn microsteps(&self, gpus: u32) -> u32 {
        let per_gpu = self.batch_size.div_ceil(gpus);
        per_gpu.div_ceil(self.arch.max_samples_per_gpu)
    }

    /// The all-reduce share of one iteration, in seconds (zero on one
    /// GPU). Mirrors the communication term of `iter_latency_secs`.
    fn allreduce_secs(&self, gpus: u32, placement: PlacementQuality) -> f64 {
        if gpus <= 1 {
            return 0.0;
        }
        let g = f64::from(gpus);
        let grad = self.arch.grad_bytes();
        match placement {
            PlacementQuality::Packed if gpus > self.node_gpus => {
                let per_node = f64::from(self.node_gpus.min(gpus));
                let nodes = (g / f64::from(self.node_gpus)).ceil();
                let intra =
                    2.0 * (per_node - 1.0) / per_node * grad / (self.intra_node_bw_gbps * 1e9);
                let inter = 2.0 * (nodes - 1.0) / nodes * grad / (self.inter_node_bw_gbps * 1e9);
                intra + inter
            }
            _ => {
                let bytes = 2.0 * (g - 1.0) / g * grad;
                bytes / (self.bandwidth_gbps(gpus, placement) * 1e9)
            }
        }
    }

    fn bandwidth_gbps(&self, gpus: u32, placement: PlacementQuality) -> f64 {
        match placement {
            PlacementQuality::Packed => {
                if gpus <= self.node_gpus {
                    self.intra_node_bw_gbps
                } else {
                    self.inter_node_bw_gbps
                }
            }
            PlacementQuality::Scattered => self.scattered_bw_gbps,
        }
    }
}

impl ScalingModel for AnalyticScaling {
    fn iter_latency_secs(&self, gpus: u32, placement: PlacementQuality) -> f64 {
        assert!(gpus > 0, "cannot train on zero GPUs");
        let per_gpu_samples = f64::from(self.batch_size.div_ceil(gpus));
        let microsteps = self.microsteps(gpus);
        let compute = per_gpu_samples / self.arch.per_gpu_samples_per_sec
            + f64::from(microsteps - 1) * self.arch.microstep_overhead_secs;
        // Hierarchical all-reduce above one node: a ring within each node
        // over NVLink-class links, then a per-node ring over the network
        // (as NCCL performs it) — see `allreduce_secs`.
        let allreduce = self.allreduce_secs(gpus, placement);
        let base = compute + allreduce + self.arch.fixed_overhead_secs;
        match placement {
            PlacementQuality::Packed => base,
            // Scattered workers additionally pay remote data loading and
            // orchestration overheads, observed even for 1-GPU trials
            // (Table 1's 1-GPU row).
            PlacementQuality::Scattered => base * self.scattered_overhead_factor,
        }
    }

    fn batch_size(&self) -> u32 {
        self.batch_size
    }

    fn latency_components(&self, gpus: u32, placement: PlacementQuality) -> (f64, f64) {
        assert!(gpus > 0, "cannot train on zero GPUs");
        let per_gpu_samples = f64::from(self.batch_size.div_ceil(gpus));
        let microsteps = self.microsteps(gpus);
        let compute = per_gpu_samples / self.arch.per_gpu_samples_per_sec
            + f64::from(microsteps - 1) * self.arch.microstep_overhead_secs
            + self.arch.fixed_overhead_secs;
        let comm = self.allreduce_secs(gpus, placement);
        match placement {
            PlacementQuality::Packed => (compute, comm),
            // The scattered overhead factor inflates both shares, so the
            // parts still sum to `iter_latency_secs` (up to rounding).
            PlacementQuality::Scattered => (
                compute * self.scattered_overhead_factor,
                comm * self.scattered_overhead_factor,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{BERT_BASE, RESNET50, VGG16};

    fn resnet50_16xl() -> AnalyticScaling {
        // ResNet-50, batch 1024, p3.16xlarge shape (8 GPUs/node) — the
        // Table 1 configuration.
        AnalyticScaling::for_arch(&RESNET50, 1024, 8)
    }

    #[test]
    fn latency_decreases_with_gpus_when_packed_on_node() {
        let m = resnet50_16xl();
        let mut prev = f64::INFINITY;
        for g in [1, 2, 4, 8] {
            let l = m.iter_latency_secs(g, PlacementQuality::Packed);
            assert!(l < prev, "latency should fall: {g} GPUs -> {l}");
            prev = l;
        }
    }

    #[test]
    fn scaling_is_sublinear() {
        let m = resnet50_16xl();
        for g in [2, 4, 8, 16] {
            let s = m.speedup(g, PlacementQuality::Packed);
            assert!(s < f64::from(g), "speedup at {g} GPUs must be sublinear");
            assert!(s > 1.0, "but still a speedup");
        }
    }

    #[test]
    fn crossing_node_boundary_hurts() {
        let m = AnalyticScaling::for_arch(&RESNET50, 512, 4);
        // Per-GPU efficiency (speedup/g) drops sharply from 4 GPUs (one
        // node) to 8 GPUs (two nodes).
        let eff4 = m.speedup(4, PlacementQuality::Packed) / 4.0;
        let eff8 = m.speedup(8, PlacementQuality::Packed) / 8.0;
        assert!(eff8 < eff4 * 0.8, "eff4={eff4} eff8={eff8}");
    }

    #[test]
    fn reproduces_table1_throughput_shape() {
        // Table 1: placed {749, 1480, 2773}, scattered {674, 948, 1210}
        // samples/s for ResNet-50 bs=1024 at 1/2/4 GPUs on p3.16xlarge.
        let m = resnet50_16xl();
        let placed: Vec<f64> = [1, 2, 4]
            .iter()
            .map(|&g| m.throughput(g, PlacementQuality::Packed))
            .collect();
        let scattered: Vec<f64> = [1, 2, 4]
            .iter()
            .map(|&g| m.throughput(g, PlacementQuality::Scattered))
            .collect();
        let expect_placed = [749.0, 1480.0, 2773.0];
        let expect_scattered = [674.0, 948.0, 1210.0];
        for i in 0..3 {
            assert!(
                (placed[i] - expect_placed[i]).abs() / expect_placed[i] < 0.10,
                "placed[{i}] = {} vs paper {}",
                placed[i],
                expect_placed[i]
            );
            assert!(
                (scattered[i] - expect_scattered[i]).abs() / expect_scattered[i] < 0.12,
                "scattered[{i}] = {} vs paper {}",
                scattered[i],
                expect_scattered[i]
            );
        }
        // The headline ratios: ~3.7x packed scaling, ~1.8x scattered.
        assert!(placed[2] / placed[0] > 3.4);
        assert!(scattered[2] / scattered[0] < 2.1);
    }

    #[test]
    fn gradient_accumulation_kicks_in_under_strong_scaling() {
        let m = AnalyticScaling::for_arch(&RESNET50, 2048, 8);
        // 2048 samples on 1 GPU with 256-sample capacity = 8 micro-steps.
        assert_eq!(m.microsteps(1), 8);
        assert_eq!(m.microsteps(8), 1);
        // Accumulation costs overhead but total compute is preserved:
        // latency at 1 GPU is near 8× the per-microstep compute, not more
        // than ~15% above it.
        let l1 = m.iter_latency_secs(1, PlacementQuality::Packed);
        let ideal = 2048.0 / RESNET50.per_gpu_samples_per_sec;
        assert!(l1 >= ideal);
        assert!(l1 < ideal * 1.15);
    }

    #[test]
    fn communication_heavy_models_scale_worse() {
        // Fig. 4's ordering: BERT and VGG (large gradients per unit
        // compute) sit below ResNet-50.
        let rn = AnalyticScaling::for_arch(&RESNET50, 512, 4);
        let bert = AnalyticScaling::for_arch(&BERT_BASE, 512, 4);
        let vgg = AnalyticScaling::for_arch(&VGG16, 512, 4);
        let g = 8;
        assert!(
            bert.speedup(g, PlacementQuality::Packed) < rn.speedup(g, PlacementQuality::Packed)
        );
        assert!(vgg.speedup(g, PlacementQuality::Packed) < rn.speedup(g, PlacementQuality::Packed));
    }

    #[test]
    fn scattered_is_never_faster_than_packed() {
        let m = resnet50_16xl();
        for g in 1..=16 {
            assert!(
                m.iter_latency_secs(g, PlacementQuality::Scattered)
                    >= m.iter_latency_secs(g, PlacementQuality::Packed)
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero GPUs")]
    fn zero_gpus_panics() {
        resnet50_16xl().iter_latency_secs(0, PlacementQuality::Packed);
    }

    #[test]
    fn bandwidth_override_changes_cross_node_latency() {
        let slow = AnalyticScaling::for_arch(&RESNET50, 512, 4).with_bandwidths(25.0, 0.5);
        let fast = AnalyticScaling::for_arch(&RESNET50, 512, 4).with_bandwidths(25.0, 10.0);
        assert!(
            slow.iter_latency_secs(8, PlacementQuality::Packed)
                > fast.iter_latency_secs(8, PlacementQuality::Packed)
        );
        // Intra-node behaviour unchanged.
        assert_eq!(
            slow.iter_latency_secs(4, PlacementQuality::Packed),
            fast.iter_latency_secs(4, PlacementQuality::Packed)
        );
    }
}
