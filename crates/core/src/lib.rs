//! Foundation types shared by every RubberBand crate.
//!
//! This crate deliberately has **no external dependencies**. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — millisecond-resolution virtual time used
//!   by the discrete-event cloud and executor simulators.
//! * [`Cost`] — exact money arithmetic in integer micro-dollars.
//! * Typed identifiers ([`TrialId`], [`NodeId`], ...) so that the many
//!   integer-indexed entities in the system cannot be confused for one
//!   another.
//! * A deterministic PRNG ([`rng::Prng`]) and the latency distributions
//!   ([`rng::Distribution`]) that parameterize the execution model. Keeping
//!   the PRNG local makes every experiment bit-reproducible from a seed and
//!   avoids a dependency on `rand`/`rand_distr`.
//! * [`RbError`] — the shared error type.

pub mod error;
pub mod ids;
pub mod money;
pub mod par;
pub mod rng;
pub mod stats;
pub mod time;

pub use error::{RbError, Result};
pub use ids::{InstanceId, NodeId, PlanId, StageId, TrialId, WorkerId};
pub use money::Cost;
pub use rng::{mix_seed, Distribution, Prng};
pub use time::{SimDuration, SimTime};
