//! Fleet artifact (`repro fleet`) — one run manifest per executed run.
//!
//! Re-runs the quick-shape ext-adapt, ext-chaos, and ext-serve sweeps
//! and flattens every executed run into an [`rb_replay::rollup::RunRecord`]
//! manifest under `repro_out/fleet/<sweep>/run_NNN.json`. The `rollup`
//! binary (crate `rb-replay`) then walks that tree and renders the
//! fleet-analytics report `scripts/verify.sh` diffs against
//! `scripts/expected_rollup.txt`.
//!
//! The converters are exact where the sources are exact (serve meters
//! are integer micro-dollars and milliseconds) and round once where the
//! sweep rows already hold floats (adapt/chaos report dollars and
//! seconds as `f64`); either way the manifests are deterministic for a
//! given seed, so the rollup is byte-stable.

use crate::adapt::{AdaptRow, DriftScenario};
use crate::chaos::{ChaosRow, ChaosScenario, ZoneChaosRow};
use crate::serve::ServeJobRow;
use rb_core::Result;
use rb_replay::rollup::RunRecord;
use std::io::Write as _;
use std::path::Path;

/// Dollars (sweep-row floats) to integer micro-dollars, rounded once.
fn dollars_to_micros(dollars: f64) -> i64 {
    (dollars * 1e6).round() as i64
}

/// Seconds (sweep-row floats) to integer milliseconds, rounded once.
fn secs_to_ms(secs: f64) -> u64 {
    (secs * 1e3).round() as u64
}

/// Scenario label for an adapt cell: the drift kind, then the sweep
/// coordinates that distinguish cells within it.
fn adapt_scenario(row: &AdaptRow) -> String {
    let base = if let Some((gang, factor)) = row.straggler {
        format!("straggler-{gang}x{factor:.2}")
    } else if row.comm_slowdown != 1.0 {
        format!("contention-{:.2}", row.comm_slowdown)
    } else if row.slowdown != 1.0 {
        format!("uniform-{:.2}", row.slowdown)
    } else {
        "calm".to_owned()
    };
    format!(
        "{base} rate{:.1} thr{:.2} {}",
        row.rate_per_hour,
        row.threshold,
        if row.watchdog { "wd-on" } else { "wd-off" }
    )
}

/// The adaptive run of one ext-adapt cell as a manifest. The adapt
/// sweep has no chaos layer or admission queue, so those meters are 0.
pub fn adapt_record(row: &AdaptRow) -> RunRecord {
    RunRecord {
        sweep: "ext-adapt".to_owned(),
        scenario: adapt_scenario(row),
        tenant: None,
        jct_ms: secs_to_ms(row.adaptive_jct_secs),
        cost_micros: dollars_to_micros(row.adaptive_cost),
        queue_wait_ms: 0,
        faults: 0,
        retries: 0,
        fallbacks: 0,
        degraded: 0,
        replans: row.replans as u64,
        preemptions: u64::from(row.preemptions),
        pool_admits: 0,
        // Advisory recommendations: the adapt sweep never executes.
        market_switches: row.market_switches as u64,
    }
}

/// The hardened run of one ext-chaos cell as a manifest, or `None` if
/// the hardened run aborted (nothing billable to roll up).
pub fn chaos_record(row: &ChaosRow) -> Option<RunRecord> {
    let (jct, cost) = (row.hardened_jct_secs?, row.hardened_cost?);
    Some(RunRecord {
        sweep: "ext-chaos".to_owned(),
        scenario: row.name.to_owned(),
        tenant: None,
        jct_ms: secs_to_ms(jct),
        cost_micros: dollars_to_micros(cost),
        queue_wait_ms: 0,
        faults: row.faults_injected,
        retries: row.retries,
        fallbacks: row.fallbacks,
        degraded: u64::from(row.degraded_stages),
        replans: 0,
        preemptions: u64::from(row.preemptions),
        pool_admits: 0,
        market_switches: 0,
    })
}

/// One correlated-failure (zones) cell as a manifest. The two arms are
/// separate scenarios, so the rollup contrasts open loop against the
/// executed switch; `market_switches` counts executed fleet drains.
pub fn zones_record(row: &ZoneChaosRow) -> RunRecord {
    RunRecord {
        sweep: "ext-chaos".to_owned(),
        scenario: format!(
            "zones-{} switch-{}",
            row.name,
            if row.switch { "on" } else { "off" }
        ),
        tenant: None,
        jct_ms: secs_to_ms(row.jct_secs),
        cost_micros: dollars_to_micros(row.cost),
        queue_wait_ms: 0,
        faults: row.faults_injected,
        retries: row.retries,
        fallbacks: 0,
        degraded: 0,
        replans: row.replans as u64,
        preemptions: 0,
        pool_admits: 0,
        market_switches: row.executed_switches as u64,
    }
}

/// One completed ext-serve job as a manifest — the only sweep with a
/// billing tenant and a real admission queue, so its meters are exact
/// integers end to end.
pub fn serve_record(row: &ServeJobRow) -> RunRecord {
    // Serial cells keep their original label; contended cells (more
    // than one slot) carry the slot count so the rollup separates the
    // two sub-sweeps' scenarios.
    let slots = if row.max_concurrent > 1 {
        format!(" mc{}", row.max_concurrent)
    } else {
        String::new()
    };
    RunRecord {
        sweep: "ext-serve".to_owned(),
        scenario: format!(
            "t{} gap{}{slots} pool-{}",
            row.tenants,
            row.gap_secs,
            if row.pool { "on" } else { "off" }
        ),
        tenant: Some(row.tenant.clone()),
        jct_ms: row.jct_ms,
        cost_micros: row.cost_micros,
        queue_wait_ms: row.queue_wait_ms,
        faults: row.faults,
        retries: row.retries,
        fallbacks: row.fallbacks,
        degraded: u64::from(row.degraded),
        replans: 0,
        preemptions: u64::from(row.preemptions),
        pool_admits: u64::from(row.pool_admitted),
        market_switches: 0,
    }
}

/// Runs the three quick-shape sweeps and returns every run's manifest
/// (adapt cells, surviving chaos cells, serve jobs), in sweep order.
///
/// # Errors
///
/// Propagates planner/executor/service errors.
pub fn build_fleet(seed: u64) -> Result<Vec<RunRecord>> {
    let mut records = Vec::new();

    let scenarios = [
        DriftScenario::calm(),
        DriftScenario::uniform(1.5),
        DriftScenario::straggler(4, 6.0),
    ];
    let (_, rows) =
        crate::adapt::ext_adapt(&scenarios, &[0.0, 1.0], &[1.15], &[false, true], seed)?;
    records.extend(rows.iter().map(adapt_record));

    let (_, rows) = crate::chaos::ext_chaos(&ChaosScenario::default_sweep(), seed)?;
    records.extend(rows.iter().filter_map(chaos_record));

    let (_, rows) = crate::chaos::ext_chaos_zones(seed, 0)?;
    records.extend(rows.iter().map(zones_record));

    let (_, jobs) = crate::serve::ext_serve_with_jobs(&[2], &[0, 300], seed)?;
    records.extend(jobs.iter().map(serve_record));

    let (_, jobs) = crate::serve::ext_serve_contended_with_jobs(&[2], &[0], seed)?;
    records.extend(jobs.iter().map(serve_record));

    Ok(records)
}

/// Writes one `run_NNN.json` per record under `dir/<sweep>/`, numbering
/// within each sweep in record order. Returns how many were written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_fleet(dir: &Path, records: &[RunRecord]) -> std::io::Result<usize> {
    let mut per_sweep: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for record in records {
        let n = per_sweep.entry(record.sweep.as_str()).or_insert(0);
        let sweep_dir = dir.join(&record.sweep);
        std::fs::create_dir_all(&sweep_dir)?;
        let mut f = std::fs::File::create(sweep_dir.join(format!("run_{n:03}.json")))?;
        writeln!(f, "{}", record.to_json())?;
        *n += 1;
    }
    Ok(records.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_replay::rollup::parse_run_record;

    #[test]
    fn converters_label_scenarios_and_preserve_meters() {
        let adapt = AdaptRow {
            slowdown: 1.0,
            comm_slowdown: 1.0,
            straggler: Some((4, 6.0)),
            rate_per_hour: 1.0,
            threshold: 1.15,
            watchdog: true,
            open_jct_secs: 2000.0,
            open_cost: 10.0,
            open_hit: false,
            adaptive_jct_secs: 1700.5,
            adaptive_cost: 8.25,
            adaptive_hit: true,
            replans: 2,
            watchdog_fires: 1,
            refits: 3,
            market_switches: 0,
            preemptions: 4,
        };
        let r = adapt_record(&adapt);
        assert_eq!(r.scenario, "straggler-4x6.00 rate1.0 thr1.15 wd-on");
        assert_eq!(r.jct_ms, 1_700_500);
        assert_eq!(r.cost_micros, 8_250_000);
        assert_eq!((r.replans, r.preemptions), (2, 4));

        let serve = ServeJobRow {
            tenants: 2,
            gap_secs: 300,
            pool: true,
            max_concurrent: 1,
            tenant: "tenant-1".to_owned(),
            jct_ms: 123,
            cost_micros: 456,
            queue_wait_ms: 7,
            pool_admitted: false,
            preemptions: 0,
            faults: 0,
            retries: 0,
            fallbacks: 0,
            degraded: 0,
        };
        let r = serve_record(&serve);
        assert_eq!(r.scenario, "t2 gap300 pool-on");
        assert_eq!(r.tenant.as_deref(), Some("tenant-1"));
        assert_eq!((r.jct_ms, r.cost_micros, r.queue_wait_ms), (123, 456, 7));
        assert_eq!(r.pool_admits, 0);

        // Contended cells label their slot count and carry the
        // pool-admission flag through to the manifest.
        let contended = ServeJobRow {
            max_concurrent: 2,
            pool_admitted: true,
            ..serve
        };
        let r = serve_record(&contended);
        assert_eq!(r.scenario, "t2 gap300 mc2 pool-on");
        assert_eq!(r.pool_admits, 1);

        // Zones cells label the arm and carry executed drains through.
        let zones = ZoneChaosRow {
            name: "early",
            switch: true,
            jct_secs: 1300.25,
            cost: 12.5,
            hit: true,
            faults_injected: 8,
            retries: 5,
            replans: 2,
            executed_switches: 1,
        };
        let r = zones_record(&zones);
        assert_eq!(r.scenario, "zones-early switch-on");
        assert_eq!(r.jct_ms, 1_300_250);
        assert_eq!((r.faults, r.retries, r.replans), (8, 5, 2));
        assert_eq!(r.market_switches, 1);
    }

    #[test]
    fn chaos_records_skip_aborted_runs() {
        let row = ChaosRow {
            name: "spot-storm",
            baseline_jct_secs: None,
            baseline_cost: None,
            baseline_hit: false,
            hardened_jct_secs: None,
            hardened_cost: None,
            hardened_hit: false,
            faults_injected: 9,
            retries: 1,
            fallbacks: 0,
            degraded_stages: 2,
            preemptions: 3,
        };
        assert!(chaos_record(&row).is_none());
        let survived = ChaosRow {
            hardened_jct_secs: Some(1500.0),
            hardened_cost: Some(6.5),
            ..row
        };
        let r = chaos_record(&survived).expect("billable");
        assert_eq!(r.sweep, "ext-chaos");
        assert_eq!((r.faults, r.degraded, r.preemptions), (9, 2, 3));
    }

    #[test]
    fn written_manifests_parse_back() {
        let dir = std::env::temp_dir().join(format!("rb_fleet_test_{}", std::process::id()));
        let records = vec![
            serve_record(&ServeJobRow {
                tenants: 2,
                gap_secs: 0,
                pool: false,
                max_concurrent: 1,
                tenant: "tenant-0".to_owned(),
                jct_ms: 10,
                cost_micros: 20,
                queue_wait_ms: 0,
                pool_admitted: false,
                preemptions: 0,
                faults: 0,
                retries: 0,
                fallbacks: 0,
                degraded: 0,
            }),
            serve_record(&ServeJobRow {
                tenants: 2,
                gap_secs: 0,
                pool: true,
                max_concurrent: 1,
                tenant: "tenant-1".to_owned(),
                jct_ms: 30,
                cost_micros: 40,
                queue_wait_ms: 5,
                pool_admitted: false,
                preemptions: 0,
                faults: 0,
                retries: 0,
                fallbacks: 0,
                degraded: 0,
            }),
        ];
        let n = write_fleet(&dir, &records).expect("write");
        assert_eq!(n, 2);
        for (i, record) in records.iter().enumerate() {
            let path = dir.join("ext-serve").join(format!("run_{i:03}.json"));
            let text = std::fs::read_to_string(&path).expect("read back");
            assert_eq!(&parse_run_record(&text).expect("parse back"), record);
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
