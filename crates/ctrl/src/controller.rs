//! The closed-loop adaptation controller.
//!
//! [`AdaptiveController`] sits between the executor and the planner as a
//! [`BarrierHook`]: at every stage barrier it folds the observed stage
//! span into the [`DriftMonitor`], and when the smoothed drift factor
//! leaves the configured band — or the stage absorbed spot preemptions —
//! it re-plans the *residual* job: completed stages are frozen, survivors
//! carry their checkpointed progress (so the residual spec is just the
//! spec's suffix), and the remaining stages are re-optimized by the
//! warm-started greedy planner under the *dilated* residual deadline.
//!
//! Deadline dilation is the calibration trick: if reality runs
//! `drift_factor`× slower than the model, a model-feasible plan with
//! predicted JCT ≤ `(deadline − now) / drift_factor` will actually land
//! near the deadline. The controller never rescales the fitted profile;
//! it just tells the planner the truth about how much *model time* is
//! left.
//!
//! Plan changes are applied only through the executor's barrier splice —
//! every survivor is paused with a fresh checkpoint when the hook runs,
//! so no trial is ever stranded mid-stage on a reallocated cluster.

use crate::drift::{DriftConfig, DriftMonitor, DriftObservation};
use rb_cloud::catalog::PricingTier;
use rb_core::{Cost, Result, SimDuration, SimTime};
use rb_exec::{
    BarrierHook, BarrierSnapshot, SwitchDirective, UnitObservation, WatchdogSnapshot,
};
use rb_profile::CapacityEvents;
use rb_hpo::ExperimentSpec;
use rb_obs::Lane;
use rb_planner::{plan_residual, PlannerConfig, ResidualOutcome};
use rb_scaling::{refit_least_squares, LatencyObservation, RefitScaling};
use rb_sim::{AllocationPlan, Simulator};
use std::sync::Arc;

/// Intra-stage watchdog knobs.
///
/// The watchdog arms a virtual-time budget on every stage: the drifted
/// Monte-Carlo p90 envelope times a safety margin. A stage whose
/// training round overruns the budget is cut at the next unit
/// boundaries and re-planned mid-stage — the defence against a long
/// final stage silently blowing the deadline with no barrier left to
/// catch it.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Arm the watchdog (default: true).
    pub enabled: bool,
    /// Budget multiplier over the drift-corrected p90 stage span
    /// (default: 1.75). Below ~1.2 the watchdog fires on ordinary noise;
    /// large values approach barrier-only adaptation.
    pub margin: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            margin: 1.75,
        }
    }
}

/// Online profile-refitting knobs.
///
/// Instead of scaling the whole model by one drift factor, the
/// controller least-squares-refits the scaling model's compute and
/// communication components against the observed per-stage,
/// per-allocation latencies ([`RefitScaling`]) — which is what lets
/// `plan_residual` distinguish a uniform compute slowdown from
/// parallelism-dependent contention.
#[derive(Debug, Clone)]
pub struct RefitConfig {
    /// Refit the planner's model when a re-plan triggers (default: true).
    pub enabled: bool,
    /// Minimum relative change of either factor before a new fit
    /// replaces the applied one (default: 0.10). Suppresses churn from
    /// noise-level fit wiggle.
    pub min_change: f64,
}

impl Default for RefitConfig {
    fn default() -> Self {
        RefitConfig {
            enabled: true,
            min_change: 0.10,
        }
    }
}

/// Spot-aware residual planning knobs.
///
/// Every re-plan evaluates the residual under *both* markets — the
/// executing one and its alternative (spot priced with the observed
/// interruption rate, or on-demand with none) — and records which market
/// the Monte-Carlo simulator prefers. By default the choice is advisory:
/// the executor keeps its launch market, but the preference is logged in
/// [`ReplanEvent::market`] and emitted on the bus, so a supervisor can
/// act on it. With [`MarketConfig::execute`] the controller acts on it
/// itself: the preference becomes a [`SwitchDirective`] the executor
/// drains the fleet through at the same safe point, and a degraded zone
/// is abandoned for its neighbor the same way.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Evaluate the alternative market at every re-plan (default: true).
    pub enabled: bool,
    /// Interruption-rate prior for pricing the spot alternative while
    /// running on-demand, in preemptions per instance-hour (default:
    /// 4.0). Once the job runs on spot, the observed rate replaces it.
    pub assumed_spot_rate_per_hour: f64,
    /// Execute market/zone moves instead of only advising them (default:
    /// false — the advisory mode of earlier revisions, bit-identical).
    /// When set, every barrier additionally probes the market even with
    /// no other trigger, so a cheaper-and-feasible alternative is taken
    /// as soon as it appears rather than when something else breaks.
    pub execute: bool,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            enabled: true,
            assumed_spot_rate_per_hour: 4.0,
            execute: false,
        }
    }
}

/// Controller knobs: drift detection plus the re-planner's configuration.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Drift detection.
    pub drift: DriftConfig,
    /// Configuration for mid-job residual re-planning. Defaults to the
    /// standard planner with a small exploration-sample budget — re-plans
    /// happen on the critical path, so candidates are screened at low
    /// fidelity and only survivors are re-scored in full.
    pub planner: PlannerConfig,
    /// Intra-stage watchdog.
    pub watchdog: WatchdogConfig,
    /// Online profile refitting.
    pub refit: RefitConfig,
    /// Spot-vs-on-demand residual evaluation.
    pub market: MarketConfig,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            drift: DriftConfig::default(),
            planner: PlannerConfig {
                exploration_samples: Some(5),
                ..PlannerConfig::default()
            },
            watchdog: WatchdogConfig::default(),
            refit: RefitConfig::default(),
            market: MarketConfig::default(),
        }
    }
}

/// What made the controller re-plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanTrigger {
    /// The smoothed drift factor left the configured band.
    Drift,
    /// The completed stage absorbed one or more spot preemptions.
    Preemption,
    /// A stage overran its watchdog budget mid-stage.
    Watchdog,
    /// The completed stage ran degraded: the provider stayed short of
    /// capacity after the executor's provisioning retries, so the stage
    /// ran on fewer instances than planned. The residual is re-planned
    /// so the remaining stages absorb the lost time.
    CapacityShortfall,
    /// The stage's provisioning window recorded zone trouble — denials,
    /// retries, or correlated outage kills on a multi-zone cloud. The
    /// residual is re-planned with the provisioning model risk-priced
    /// from the observed window, and in execute mode future capacity is
    /// moved out of the degraded zone.
    ZoneDegraded,
    /// Nothing was wrong, but the periodic market probe (execute mode
    /// only) found the alternative market feasible and cheaper, so the
    /// controller re-planned to take it.
    MarketSwitch,
}

/// The compute market a residual plan was priced for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketChoice {
    /// Reserved, uninterruptible capacity at list price.
    OnDemand,
    /// Preemptible capacity at the spot discount.
    Spot,
}

impl MarketChoice {
    fn of(tier: PricingTier) -> Self {
        match tier {
            PricingTier::Spot => MarketChoice::Spot,
            _ => MarketChoice::OnDemand,
        }
    }

    fn name(self) -> &'static str {
        match self {
            MarketChoice::OnDemand => "on_demand",
            MarketChoice::Spot => "spot",
        }
    }

    fn tier(self) -> PricingTier {
        match self {
            MarketChoice::OnDemand => PricingTier::OnDemand,
            MarketChoice::Spot => PricingTier::Spot,
        }
    }
}

/// One applied model refit.
#[derive(Debug, Clone, Copy)]
pub struct RefitEvent {
    /// The stage at which the refit was applied.
    pub stage: usize,
    /// Virtual time of the application.
    pub at: SimTime,
    /// Fitted compute-share factor α.
    pub compute_factor: f64,
    /// Fitted communication-share factor β.
    pub comm_factor: f64,
}

/// One re-planning decision, applied or not.
#[derive(Debug, Clone)]
pub struct ReplanEvent {
    /// The barrier (completed stage) at which the re-plan ran.
    pub stage: usize,
    /// Virtual time of the barrier.
    pub at: SimTime,
    /// What tripped it.
    pub trigger: ReplanTrigger,
    /// The smoothed drift factor at decision time.
    pub drift_factor: f64,
    /// The dilated deadline handed to the residual planner.
    pub residual_deadline: SimDuration,
    /// The incumbent plan's suffix for the remaining stages.
    pub old_suffix: Vec<u32>,
    /// The planner's choice for the remaining stages.
    pub new_suffix: Vec<u32>,
    /// Whether the new suffix was predicted to fit the dilated deadline.
    pub feasible: bool,
    /// Predicted residual JCT of the new suffix (model time).
    pub predicted_jct: SimDuration,
    /// Predicted residual cost of the new suffix.
    pub predicted_cost: Cost,
    /// True when the suffix differed from the incumbent and was spliced
    /// into the executing plan.
    pub applied: bool,
    /// The market the Monte-Carlo evaluation preferred for the residual.
    pub market: MarketChoice,
    /// True when the preferred market differs from the executing one.
    /// Advisory unless [`MarketConfig::execute`] is set.
    pub market_switched: bool,
    /// True when the decision produced a [`SwitchDirective`] the
    /// executor actually drained the fleet through (execute mode): a
    /// market flip, a zone move out of a degraded zone, or both.
    pub market_executed: bool,
}

/// The full adaptation record of one run.
#[derive(Debug, Clone, Default)]
pub struct AdaptationLog {
    /// Every re-planning decision, in barrier order.
    pub events: Vec<ReplanEvent>,
    /// Every drift reading, one per non-final barrier.
    pub observations: Vec<DriftObservation>,
    /// Every applied profile refit, in application order.
    pub refits: Vec<RefitEvent>,
}

impl AdaptationLog {
    /// Re-plans that actually changed the executing plan.
    pub fn applied(&self) -> usize {
        self.events.iter().filter(|e| e.applied).count()
    }

    /// Decisions that drained the fleet through an executed market/zone
    /// switch (zero outside execute mode).
    pub fn executed_switches(&self) -> usize {
        self.events.iter().filter(|e| e.market_executed).count()
    }
}

/// A [`BarrierHook`] that closes the loop between execution and planning.
#[derive(Debug)]
pub struct AdaptiveController {
    sim: Simulator,
    spec: ExperimentSpec,
    deadline: SimDuration,
    config: ControllerConfig,
    monitor: DriftMonitor,
    preemptions_seen: u32,
    events: Vec<ReplanEvent>,
    /// The pristine pre-job profile; refits are always expressed against
    /// it (never stacked on an earlier refit).
    base_model: rb_profile::ModelProfile,
    /// Accumulated per-allocation latency observations across the job.
    obs: Vec<LatencyObservation>,
    /// The `(α, β)` factors currently applied to the planner's model.
    refit: Option<(f64, f64)>,
    refits: Vec<RefitEvent>,
    /// Cumulative capacity-event tallies at the last decision point;
    /// diffing against the snapshot's totals yields the per-window
    /// distribution that risk-prices the residual plan.
    capacity_seen: CapacityEvents,
    /// A switch decided at the last callback, held for the executor's
    /// `pending_switch` poll at the same safe point.
    pending: Option<SwitchDirective>,
}

impl AdaptiveController {
    /// Creates a controller for a job about to execute `plan` under
    /// `deadline`. `sim` must be the planner's view (fitted profile +
    /// cloud profile) — drift is measured against *its* predictions.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from computing the initial per-stage
    /// envelope (e.g. a plan that does not match the spec).
    pub fn new(
        sim: Simulator,
        spec: ExperimentSpec,
        plan: &AllocationPlan,
        deadline: SimDuration,
        config: ControllerConfig,
    ) -> Result<Self> {
        let envelope = sim.stage_quantiles(&spec, plan)?;
        let monitor = DriftMonitor::new(envelope, config.drift.clone());
        let base_model = sim.model().clone();
        Ok(AdaptiveController {
            sim,
            spec,
            deadline,
            config,
            monitor,
            preemptions_seen: 0,
            events: Vec::new(),
            base_model,
            obs: Vec::new(),
            refit: None,
            refits: Vec::new(),
            capacity_seen: CapacityEvents::default(),
            pending: None,
        })
    }

    /// The drift monitor's current state.
    pub fn monitor(&self) -> &DriftMonitor {
        &self.monitor
    }

    /// Re-planning decisions so far.
    pub fn events(&self) -> &[ReplanEvent] {
        &self.events
    }

    /// Applied profile refits so far.
    pub fn refits(&self) -> &[RefitEvent] {
        &self.refits
    }

    /// Consumes the controller, returning its full adaptation record.
    pub fn into_log(self) -> AdaptationLog {
        AdaptationLog {
            events: self.events,
            observations: self.monitor.into_observations(),
            refits: self.refits,
        }
    }

    /// The residual deadline in model time: wall-clock time left, shrunk
    /// (or stretched) by the drift factor. Floored at one second — a
    /// blown deadline still needs *some* plan, and the planner's
    /// minimum-JCT fallback loses the least.
    fn dilated_residual_deadline(&self, now: SimTime) -> SimDuration {
        let elapsed = (now - SimTime::ZERO).as_secs_f64();
        let left = (self.deadline.as_secs_f64() - elapsed).max(1.0);
        SimDuration::from_secs_f64(left / self.monitor.drift_factor().max(1e-6))
    }

    /// Folds the executor's per-allocation unit observations into the
    /// refit sample set.
    fn push_observations(&mut self, unit_obs: &[UnitObservation]) {
        let steps = self.base_model.steps_per_iter as f64;
        if steps <= 0.0 {
            return;
        }
        for o in unit_obs {
            if o.units == 0 || !o.mean_secs.is_finite() || o.mean_secs <= 0.0 {
                continue;
            }
            self.obs.push(LatencyObservation {
                gpus: o.gpus,
                placement: o.placement,
                observed_iter_secs: o.mean_secs / steps,
                weight: o.units as f64,
            });
        }
    }

    /// A fresh simulator sharing this controller's model view and engine
    /// configuration but running over `cloud` — used to price the
    /// alternative market without touching the planning simulator.
    fn sibling_sim(&self, cloud: rb_profile::CloudProfile) -> Simulator {
        Simulator::new(self.sim.model().clone(), cloud)
            .with_config(self.sim.config().clone())
            .with_engine(*self.sim.engine())
    }

    /// Emits the replan-trigger counter and instant for `trigger`.
    fn note_trigger(
        &self,
        trigger: ReplanTrigger,
        stage: usize,
        now: SimTime,
        recorder: &rb_obs::RecorderHandle,
    ) {
        recorder.counter_add("ctrl", "replans_triggered", 1);
        if recorder.enabled() {
            recorder.instant(
                now,
                "ctrl",
                "replan.trigger",
                Lane::Controller,
                vec![
                    ("stage", stage.into()),
                    (
                        "trigger",
                        match trigger {
                            ReplanTrigger::Drift => "drift",
                            ReplanTrigger::Preemption => "preemption",
                            ReplanTrigger::Watchdog => "watchdog",
                            ReplanTrigger::CapacityShortfall => "capacity_shortfall",
                            ReplanTrigger::ZoneDegraded => "zone_degraded",
                            ReplanTrigger::MarketSwitch => "market_switch",
                        }
                        .into(),
                    ),
                    ("drift_factor", self.monitor.drift_factor().into()),
                ],
            );
        }
    }

    /// In execute mode, converts a decision into the [`SwitchDirective`]
    /// the executor will poll at this same safe point: the preferred
    /// market (with its interruption expectation for future capacity)
    /// and/or the neighbor zone when the home zone degraded. Returns
    /// whether a directive was armed.
    fn arm_switch(
        &mut self,
        market: MarketChoice,
        market_switched: bool,
        zone_move: bool,
        home_zone: u32,
        num_zones: u32,
    ) -> bool {
        if !self.config.market.execute {
            return false;
        }
        let mut directive = SwitchDirective::default();
        if market_switched {
            directive.market = Some(market.tier());
            directive.interruption_rate_per_hour = Some(match market {
                MarketChoice::Spot => self.config.market.assumed_spot_rate_per_hour,
                MarketChoice::OnDemand => 0.0,
            });
        }
        if zone_move && num_zones > 1 {
            directive.zone = Some((home_zone + 1) % num_zones);
        }
        if directive.is_empty() {
            return false;
        }
        if let (Some(tier), Some(rate)) = (directive.market, directive.interruption_rate_per_hour) {
            // The planning view follows the executed market: without
            // this, every later barrier would score "current" against
            // the abandoned tier and re-advise the same switch forever.
            let recorder = self.sim.recorder().clone();
            let mut cloud = self.sim.cloud().clone();
            cloud.pricing = cloud.pricing.with_tier(tier);
            cloud.spot_interruptions_per_hour = rate;
            self.sim = self.sibling_sim(cloud).with_recorder(recorder);
        }
        self.pending = Some(directive);
        true
    }

    /// Diffs the snapshot's cumulative capacity tallies against the last
    /// decision point, advancing the high-water mark. The returned
    /// window is what the stage just lived through — the distribution
    /// [`rb_profile::CloudProfile::risk_from_events`] folds into the
    /// provisioning model.
    fn capacity_window(&mut self, total: CapacityEvents) -> CapacityEvents {
        let seen = self.capacity_seen;
        self.capacity_seen = total;
        CapacityEvents {
            requests: total.requests.saturating_sub(seen.requests),
            denials: total.denials.saturating_sub(seen.denials),
            retries: total.retries.saturating_sub(seen.retries),
            outage_kills: total.outage_kills.saturating_sub(seen.outage_kills),
        }
    }

    /// Least-squares-refits the planner's scaling model against all
    /// latency observations so far and, when the fit moved by at least
    /// `min_change`, swaps the refit model into the planning simulator.
    /// Returns whether a new fit was applied.
    fn try_refit(&mut self, stage: usize, now: SimTime) -> bool {
        if !self.config.refit.enabled || self.obs.is_empty() {
            return false;
        }
        let Some((alpha, beta)) = refit_least_squares(self.base_model.scaling.as_ref(), &self.obs)
        else {
            return false;
        };
        let (cur_a, cur_b) = self.refit.unwrap_or((1.0, 1.0));
        let change = (alpha / cur_a - 1.0).abs().max((beta / cur_b - 1.0).abs());
        if change < self.config.refit.min_change {
            return false;
        }
        let mut model = self.base_model.clone();
        model.scaling = Arc::new(RefitScaling::new(
            self.base_model.scaling.clone(),
            alpha,
            beta,
        ));
        let cloud = self.sim.cloud().clone();
        let sim_config = self.sim.config().clone();
        let engine = *self.sim.engine();
        let recorder = self.sim.recorder().clone();
        self.sim = Simulator::new(model, cloud)
            .with_config(sim_config)
            .with_engine(engine)
            .with_recorder(recorder.clone());
        self.refit = Some((alpha, beta));
        self.refits.push(RefitEvent {
            stage,
            at: now,
            compute_factor: alpha,
            comm_factor: beta,
        });
        // The refit model now carries the observed slowdown itself;
        // keeping the old drift factor would dilate the residual deadline
        // twice for the same cause.
        self.monitor.reset_factor(1.0);
        recorder.counter_add("ctrl", "refits_applied", 1);
        if recorder.enabled() {
            recorder.instant(
                now,
                "ctrl",
                "refit.apply",
                Lane::Controller,
                vec![
                    ("stage", stage.into()),
                    ("compute_factor", alpha.into()),
                    ("comm_factor", beta.into()),
                ],
            );
        }
        true
    }

    /// Plans the residual under the executing market, and — when market
    /// evaluation is enabled — prices the same residual under the
    /// alternative market (spot at the observed/assumed interruption
    /// rate, or on-demand with none). A non-calm capacity window
    /// risk-prices *both* markets first: the provisioning-delay model is
    /// stretched by the observed denial/retry/outage distribution, so
    /// the planner stops assuming the calibrated steady state mid-storm.
    /// Returns the authoritative outcome (from the executing market)
    /// plus the preferred market and whether it differs from the
    /// executing one.
    fn plan_residual_markets(
        &mut self,
        residual_spec: &ExperimentSpec,
        residual_deadline: SimDuration,
        warm: &AllocationPlan,
        now: SimTime,
        preemptions: u32,
        instance_seconds: f64,
        window: &CapacityEvents,
    ) -> Option<(ResidualOutcome, MarketChoice, bool)> {
        let risky = window.requests > 0 && !window.is_calm();
        let base_cloud = self.sim.cloud().risk_from_events(window);
        if risky {
            let recorder = self.sim.recorder().clone();
            if recorder.enabled() {
                let stretch = if self.sim.cloud().provision_delay.mean() > 0.0 {
                    base_cloud.provision_delay.mean() / self.sim.cloud().provision_delay.mean()
                } else {
                    1.0
                };
                recorder.instant(
                    now,
                    "ctrl",
                    "replan.risk_priced",
                    Lane::Controller,
                    vec![
                        ("requests", window.requests.into()),
                        ("denials", window.denials.into()),
                        ("retries", window.retries.into()),
                        ("outage_kills", window.outage_kills.into()),
                        ("provision_stretch", stretch.into()),
                    ],
                );
            }
        }
        let out = if risky {
            plan_residual(
                &self.sibling_sim(base_cloud.clone()),
                residual_spec,
                residual_deadline,
                warm,
                &self.config.planner,
            )
            .ok()?
        } else {
            plan_residual(
                &self.sim,
                residual_spec,
                residual_deadline,
                warm,
                &self.config.planner,
            )
            .ok()?
        };
        let current = MarketChoice::of(self.sim.cloud().pricing.tier);
        if !self.config.market.enabled {
            return Some((out, current, false));
        }

        // Score for the executing market. On spot with enough history the
        // observed interruption rate replaces the profile's configured
        // one, so the comparison reflects the churn actually seen.
        let mut cur_feasible = out.feasible;
        let mut cur_cost = out.prediction.cost.as_dollars();
        if current == MarketChoice::Spot && instance_seconds > 0.0 {
            let observed_rate = f64::from(preemptions) / (instance_seconds / 3600.0);
            if observed_rate.is_finite() {
                let mut cur_cloud = base_cloud.clone();
                cur_cloud.spot_interruptions_per_hour = observed_rate;
                if let Ok(cur) = plan_residual(
                    &self.sibling_sim(cur_cloud),
                    residual_spec,
                    residual_deadline,
                    warm,
                    &self.config.planner,
                ) {
                    cur_feasible = cur.feasible;
                    cur_cost = cur.prediction.cost.as_dollars();
                }
            }
        }

        let mut alt_cloud = base_cloud;
        let alt_market = match current {
            MarketChoice::OnDemand => {
                alt_cloud.pricing = alt_cloud.pricing.with_spot();
                // No spot history while on-demand: price interruptions at
                // the configured prior.
                alt_cloud.spot_interruptions_per_hour =
                    self.config.market.assumed_spot_rate_per_hour;
                MarketChoice::Spot
            }
            MarketChoice::Spot => {
                alt_cloud.pricing.tier = PricingTier::OnDemand;
                alt_cloud.spot_interruptions_per_hour = 0.0;
                MarketChoice::OnDemand
            }
        };
        let alt = plan_residual(
            &self.sibling_sim(alt_cloud),
            residual_spec,
            residual_deadline,
            warm,
            &self.config.planner,
        )
        .ok();
        let switched = alt.as_ref().is_some_and(|alt| {
            (alt.feasible && !cur_feasible)
                || (alt.feasible == cur_feasible && alt.prediction.cost.as_dollars() < cur_cost)
        });
        let market = if switched { alt_market } else { current };
        if switched {
            let recorder = self.sim.recorder().clone();
            recorder.counter_add("ctrl", "market_switches_advised", 1);
            if recorder.enabled() {
                let alt = alt.as_ref().expect("switched implies alt");
                recorder.instant(
                    now,
                    "ctrl",
                    "market.switch",
                    Lane::Controller,
                    vec![
                        ("market", market.name().into()),
                        ("feasible", alt.feasible.into()),
                        (
                            "predicted_cost_usd",
                            alt.prediction.cost.as_dollars().into(),
                        ),
                    ],
                );
            }
        }
        Some((out, market, switched))
    }
}

impl BarrierHook for AdaptiveController {
    fn at_barrier(&mut self, snap: &BarrierSnapshot<'_>) -> Option<Vec<u32>> {
        self.monitor.observe(snap.stage, snap.stage_span);
        self.push_observations(&snap.unit_obs);
        let recorder = self.sim.recorder().clone();
        // The drift-factor time series: one gauge per barrier, whether or
        // not the controller intervenes.
        recorder.gauge(
            snap.now,
            "ctrl",
            "drift_factor",
            Lane::Controller,
            self.monitor.drift_factor(),
        );
        let fresh_preemptions = snap.preemptions.saturating_sub(self.preemptions_seen);
        self.preemptions_seen = snap.preemptions;
        let window = self.capacity_window(snap.capacity_events);

        let trigger = if snap.capacity_shortfall > 0 {
            // A degraded stage always warrants a fresh residual plan:
            // the deadline envelope was built for the full allocation.
            Some(ReplanTrigger::CapacityShortfall)
        } else if snap.num_zones > 1 && !window.is_calm() {
            // Correlated zone trouble outranks preemption noise: a
            // brownout/outage window degrades *future* provisioning, so
            // the residual must be risk-priced (and, in execute mode,
            // moved) even if the completed stage landed on time.
            Some(ReplanTrigger::ZoneDegraded)
        } else if self.config.drift.replan_on_preemption && fresh_preemptions > 0 {
            Some(ReplanTrigger::Preemption)
        } else if self.monitor.drifted() {
            Some(ReplanTrigger::Drift)
        } else if self.config.market.enabled && self.config.market.execute {
            // Execute mode probes the market at every barrier; the
            // trigger is declared only if the probe actually switches.
            None
        } else {
            return None;
        };
        if let Some(trigger) = trigger {
            self.note_trigger(trigger, snap.stage, snap.now, &recorder);
        }
        let drift_at_decision = self.monitor.drift_factor();

        let next = snap.stage + 1;
        // Residual job: the spec's suffix (survivor progress lives in
        // checkpoints), warm-started from the incumbent plan's suffix.
        let residual_spec = self.spec.suffix(next).ok()?;
        let old_suffix = snap.plan.as_slice()[next..].to_vec();
        let warm = AllocationPlan::new(old_suffix.clone());
        // Refit before planning so the residual is scored on the best
        // available model; the envelope must track the refit view even if
        // no new suffix is applied below. The probe-only path skips the
        // refit: with nothing wrong, swapping models on every barrier
        // would churn the envelope for no cause.
        if trigger.is_some() && self.try_refit(snap.stage, snap.now) {
            if let Ok(qs) = self.sim.stage_quantiles(&residual_spec, &warm) {
                self.monitor.retarget(next, qs);
            }
        }
        let residual_deadline = self.dilated_residual_deadline(snap.now);
        // A planner failure must not kill the job; keep the incumbent.
        let (out, market, market_switched) = self.plan_residual_markets(
            &residual_spec,
            residual_deadline,
            &warm,
            snap.now,
            snap.preemptions,
            snap.instance_seconds,
            &window,
        )?;
        let trigger = match trigger {
            Some(t) => t,
            None => {
                if !market_switched {
                    return None;
                }
                self.note_trigger(ReplanTrigger::MarketSwitch, snap.stage, snap.now, &recorder);
                ReplanTrigger::MarketSwitch
            }
        };
        let market_executed = self.arm_switch(
            market,
            market_switched,
            trigger == ReplanTrigger::ZoneDegraded,
            snap.home_zone,
            snap.num_zones,
        );

        let new_suffix = out.plan.as_slice().to_vec();
        let applied = new_suffix != old_suffix;
        recorder.counter_add(
            "ctrl",
            if applied {
                "replans_applied"
            } else {
                "replans_rejected"
            },
            1,
        );
        if recorder.enabled() {
            recorder.instant(
                snap.now,
                "ctrl",
                if applied {
                    "replan.apply"
                } else {
                    "replan.reject"
                },
                Lane::Controller,
                vec![
                    ("stage", snap.stage.into()),
                    ("feasible", out.feasible.into()),
                    (
                        "predicted_jct_secs",
                        out.prediction.jct.as_secs_f64().into(),
                    ),
                    (
                        "predicted_cost_usd",
                        out.prediction.cost.as_dollars().into(),
                    ),
                    ("market", market.name().into()),
                ],
            );
        }
        if applied {
            // The envelope must describe the plan actually executing.
            if let Ok(qs) = self.sim.stage_quantiles(&residual_spec, &out.plan) {
                self.monitor.retarget(next, qs);
            }
        }
        self.events.push(ReplanEvent {
            stage: snap.stage,
            at: snap.now,
            trigger,
            drift_factor: drift_at_decision,
            residual_deadline,
            old_suffix,
            new_suffix: new_suffix.clone(),
            feasible: out.feasible,
            predicted_jct: out.prediction.jct,
            predicted_cost: out.prediction.cost,
            applied,
            market,
            market_switched,
            market_executed,
        });
        applied.then_some(new_suffix)
    }

    fn stage_budget_secs(&mut self, stage: usize) -> Option<f64> {
        if !self.config.watchdog.enabled {
            return None;
        }
        let q = self.monitor.expected().get(stage)?;
        if !(q.p90_secs.is_finite() && q.p90_secs > 0.0) {
            return None;
        }
        let budget =
            q.p90_secs * self.config.watchdog.margin * self.monitor.drift_factor().max(1.0);
        (budget.is_finite() && budget > 0.0).then_some(budget)
    }

    fn at_watchdog(&mut self, snap: &WatchdogSnapshot<'_>) -> Option<Vec<u32>> {
        let recorder = self.sim.recorder().clone();
        // Fold the partial stage's evidence into the drift estimate: the
        // unit-weighted observed/predicted latency ratio. A watchdog
        // interruption is not a barrier span, so this goes through
        // `nudge` rather than `observe`.
        let (mut num, mut den) = (0.0f64, 0.0f64);
        for o in &snap.unit_obs {
            if o.units == 0 || !o.mean_secs.is_finite() || o.mean_secs <= 0.0 {
                continue;
            }
            let predicted = self.sim.model().unit_mean_secs(o.gpus, o.placement);
            if predicted.is_finite() && predicted > 0.0 {
                num += (o.mean_secs / predicted) * o.units as f64;
                den += o.units as f64;
            }
        }
        if den > 0.0 {
            self.monitor.nudge(num / den);
        }
        self.push_observations(&snap.unit_obs);
        // Preemptions absorbed so far are part of this decision; don't
        // re-trigger on them at the next barrier.
        self.preemptions_seen = snap.preemptions;
        let window = self.capacity_window(snap.capacity_events);

        recorder.counter_add("ctrl", "replans_triggered", 1);
        if recorder.enabled() {
            recorder.instant(
                snap.now,
                "ctrl",
                "replan.trigger",
                Lane::Controller,
                vec![
                    ("stage", snap.stage.into()),
                    ("trigger", "watchdog".into()),
                    ("drift_factor", self.monitor.drift_factor().into()),
                    ("budget_secs", snap.budget_secs.into()),
                    ("remaining_units", snap.max_remaining_units.into()),
                ],
            );
        }
        let drift_at_decision = self.monitor.drift_factor();

        // Residual spec: the interrupted stage's survivors with their
        // residual units, then the untouched tail of the original spec.
        let mut stages: Vec<(u32, u64)> = Vec::new();
        for s in snap.stage..self.spec.num_stages() {
            let (trials, units) = self.spec.get_stage(s).ok()?;
            stages.push(if s == snap.stage {
                (trials, snap.max_remaining_units.max(1))
            } else {
                (trials, units)
            });
        }
        let residual_spec = ExperimentSpec::from_stages(&stages).ok()?;
        let old_suffix = snap.plan.as_slice()[snap.stage..].to_vec();
        let warm = AllocationPlan::new(old_suffix.clone());
        self.try_refit(snap.stage, snap.now);
        let residual_deadline = self.dilated_residual_deadline(snap.now);
        let planned = self.plan_residual_markets(
            &residual_spec,
            residual_deadline,
            &warm,
            snap.now,
            snap.preemptions,
            snap.instance_seconds,
            &window,
        );
        // Whatever happens below, this stage's eventual barrier span
        // includes the checkpoint/re-plan detour and must not be read as
        // drift again.
        self.monitor.invalidate(snap.stage);
        let (out, market, market_switched) = planned?;
        let market_executed = self.arm_switch(
            market,
            market_switched,
            snap.num_zones > 1 && !window.is_calm(),
            snap.home_zone,
            snap.num_zones,
        );

        let new_suffix = out.plan.as_slice().to_vec();
        let applied = new_suffix != old_suffix;
        recorder.counter_add(
            "ctrl",
            if applied {
                "replans_applied"
            } else {
                "replans_rejected"
            },
            1,
        );
        if recorder.enabled() {
            recorder.instant(
                snap.now,
                "ctrl",
                if applied {
                    "replan.apply"
                } else {
                    "replan.reject"
                },
                Lane::Controller,
                vec![
                    ("stage", snap.stage.into()),
                    ("feasible", out.feasible.into()),
                    (
                        "predicted_jct_secs",
                        out.prediction.jct.as_secs_f64().into(),
                    ),
                    (
                        "predicted_cost_usd",
                        out.prediction.cost.as_dollars().into(),
                    ),
                    ("market", market.name().into()),
                ],
            );
        }
        if applied {
            if let Ok(qs) = self.sim.stage_quantiles(&residual_spec, &out.plan) {
                self.monitor.retarget(snap.stage, qs);
            }
            // Retargeting restored the interrupted stage's envelope slot;
            // its barrier span is still contaminated by the detour.
            self.monitor.invalidate(snap.stage);
        }
        self.events.push(ReplanEvent {
            stage: snap.stage,
            at: snap.now,
            trigger: ReplanTrigger::Watchdog,
            drift_factor: drift_at_decision,
            residual_deadline,
            old_suffix,
            new_suffix: new_suffix.clone(),
            feasible: out.feasible,
            predicted_jct: out.prediction.jct,
            predicted_cost: out.prediction.cost,
            applied,
            market,
            market_switched,
            market_executed,
        });
        applied.then_some(new_suffix)
    }

    fn pending_switch(&mut self) -> Option<SwitchDirective> {
        self.pending.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_8XLARGE;
    use rb_cloud::CloudPricing;
    use rb_core::Prng;
    use rb_exec::{ExecOptions, Executor};
    use rb_hpo::{Config, Dim, SearchSpace};
    use rb_profile::{CloudProfile, ModelProfile};
    use rb_scaling::{AnalyticScaling, RescaledScaling};
    use rb_train::task::resnet101_cifar10;
    use rb_train::TaskModel;
    use std::sync::Arc;

    fn cloud() -> CloudProfile {
        CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay(SimDuration::from_secs(15))
            .with_init_latency(SimDuration::from_secs(15))
    }

    /// Executor physics at `slowdown`× the nominal per-iteration latency.
    fn physics(task: &TaskModel, slowdown: f64) -> ModelProfile {
        let nominal = Arc::new(AnalyticScaling::for_arch(&task.arch, 1024, 4));
        let scaled = Arc::new(RescaledScaling::new(nominal, slowdown));
        let mut p =
            ModelProfile::from_scaling(task.name, scaled, task.steps_per_iter(1024), 2.0, 0.02);
        p.train_startup_secs = 2.0;
        p
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec::from_stages(&[(8, 2), (4, 4), (2, 8), (1, 16)]).unwrap()
    }

    fn configs(n: usize, seed: u64) -> Vec<Config> {
        let space = SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
            .add("weight_decay", Dim::LogUniform { lo: 1e-5, hi: 1e-2 })
            .build()
            .unwrap();
        space.sample_n(n, &mut Prng::seed_from_u64(seed))
    }

    fn executor(task: &TaskModel, plan: &AllocationPlan, slowdown: f64) -> Executor {
        Executor::new(
            spec(),
            plan.clone(),
            task.clone(),
            physics(task, slowdown),
            cloud(),
        )
        .unwrap()
        .with_options(ExecOptions {
            seed: 11,
            ..ExecOptions::default()
        })
    }

    /// The planner's view: the *nominal* model (slowdown 1.0).
    fn controller(
        plan: &AllocationPlan,
        deadline: SimDuration,
        config: ControllerConfig,
    ) -> AdaptiveController {
        let task = resnet101_cifar10();
        let sim = Simulator::new(physics(&task, 1.0), cloud());
        AdaptiveController::new(sim, spec(), plan, deadline, config).unwrap()
    }

    #[test]
    fn no_drift_means_no_replans_and_identical_execution() {
        let task = resnet101_cifar10();
        let plan = AllocationPlan::new(vec![8, 8, 8, 8]);
        let open = executor(&task, &plan, 1.0).run(&configs(8, 3)).unwrap();
        // Generous deadline, matched physics: the controller observes but
        // never intervenes, and the run is bit-identical to open loop.
        let mut ctrl = controller(
            &plan,
            SimDuration::from_hours(2),
            ControllerConfig::default(),
        );
        let adaptive = executor(&task, &plan, 1.0)
            .run_hooked(&configs(8, 3), &mut ctrl)
            .unwrap();
        let log = ctrl.into_log();
        assert_eq!(log.applied(), 0, "events: {:?}", log.events);
        assert_eq!(adaptive.jct, open.jct);
        assert_eq!(adaptive.compute_cost, open.compute_cost);
        assert_eq!(adaptive.best_accuracy, open.best_accuracy);
        assert_eq!(log.observations.len(), 3);
    }

    #[test]
    fn injected_slowdown_triggers_a_drift_replan_that_speeds_up_the_job() {
        let task = resnet101_cifar10();
        let plan = AllocationPlan::new(vec![8, 8, 8, 8]);
        let slowdown = 1.6;
        let open = executor(&task, &plan, slowdown)
            .run(&configs(8, 3))
            .unwrap();
        // Deadline sized so the nominal plan would fit but the slowed
        // reality misses it: the controller must buy speed.
        let deadline = SimDuration::from_secs_f64(open.jct.as_secs_f64() * 0.85);
        let mut ctrl = controller(&plan, deadline, ControllerConfig::default());
        let adaptive = executor(&task, &plan, slowdown)
            .run_hooked(&configs(8, 3), &mut ctrl)
            .unwrap();
        let log = ctrl.into_log();
        assert!(log.applied() > 0, "no re-plan applied: {:?}", log.events);
        assert!(log.events.iter().any(|e| e.trigger == ReplanTrigger::Drift));
        assert!(
            adaptive.jct < open.jct,
            "adaptive {} !< open {}",
            adaptive.jct,
            open.jct
        );
        // The tuning outcome is preserved across the re-plan.
        assert_eq!(adaptive.best_accuracy, open.best_accuracy);
    }

    #[test]
    fn preemption_triggers_a_replan_even_without_drift() {
        let task = resnet101_cifar10();
        let plan = AllocationPlan::new(vec![8, 8, 4, 4]);
        let mut c = cloud().with_spot_interruptions(40.0);
        c.pricing = c.pricing.with_spot();
        let exec = Executor::new(
            spec(),
            plan.clone(),
            task.clone(),
            physics(&task, 1.0),
            c.clone(),
        )
        .unwrap()
        .with_options(ExecOptions {
            seed: 11,
            ..ExecOptions::default()
        });
        // Drift detection effectively off and the watchdog disarmed (spot
        // recovery detours stretch stages past the p90 envelope, which
        // would legitimately fire it): only preemptions can trigger.
        let config = ControllerConfig {
            drift: DriftConfig {
                replan_threshold: 100.0,
                ..DriftConfig::default()
            },
            watchdog: WatchdogConfig {
                enabled: false,
                ..WatchdogConfig::default()
            },
            ..ControllerConfig::default()
        };
        let sim = Simulator::new(physics(&task, 1.0), c);
        let mut ctrl =
            AdaptiveController::new(sim, spec(), &plan, SimDuration::from_hours(2), config)
                .unwrap();
        let report = exec.run_hooked(&configs(8, 3), &mut ctrl).unwrap();
        assert!(report.preemptions > 0, "rate 40/h produced no preemptions");
        let log = ctrl.into_log();
        assert!(
            log.events
                .iter()
                .all(|e| e.trigger == ReplanTrigger::Preemption),
            "{:?}",
            log.events
        );
        assert!(!log.events.is_empty());
    }

    /// Parallelism-dependent contention: communication runs `beta`× slow,
    /// compute is untouched. Tiny gangs barely notice; a 16-GPU gang is
    /// hit hard.
    fn comm_physics(task: &TaskModel, beta: f64) -> ModelProfile {
        let nominal = Arc::new(AnalyticScaling::for_arch(&task.arch, 1024, 4));
        let slowed = Arc::new(RefitScaling::new(nominal, 1.0, beta));
        let mut p =
            ModelProfile::from_scaling(task.name, slowed, task.steps_per_iter(1024), 2.0, 0.02);
        p.train_startup_secs = 2.0;
        p
    }

    #[test]
    fn watchdog_recovers_a_hidden_final_stage_slowdown() {
        let task = resnet101_cifar10();
        // Early stages run 2-GPU gangs (communication share ≈ 0) and stay
        // inside the drift band; the 16-GPU final stage is slowed hard by
        // the contention — and has no barrier after it, so barrier-only
        // adaptation structurally cannot react to it.
        let plan = AllocationPlan::new(vec![2, 2, 2, 16]);
        let run = |config: Option<ControllerConfig>| {
            let exec = Executor::new(
                spec(),
                plan.clone(),
                task.clone(),
                comm_physics(&task, 6.0),
                cloud(),
            )
            .unwrap()
            .with_options(ExecOptions {
                seed: 11,
                ..ExecOptions::default()
            });
            match config {
                None => (exec.run(&configs(8, 3)).unwrap(), None),
                Some(config) => {
                    let sim = Simulator::new(physics(&task, 1.0), cloud());
                    let mut ctrl = AdaptiveController::new(
                        sim,
                        spec(),
                        &plan,
                        SimDuration::from_hours(1),
                        config,
                    )
                    .unwrap();
                    let r = exec.run_hooked(&configs(8, 3), &mut ctrl).unwrap();
                    (r, Some(ctrl.into_log()))
                }
            }
        };

        let (open, _) = run(None);
        // Barrier-only adaptation sees three calm barriers and never
        // intervenes: the hidden slowdown goes entirely undetected.
        let barrier_only = ControllerConfig {
            watchdog: WatchdogConfig {
                enabled: false,
                ..WatchdogConfig::default()
            },
            ..ControllerConfig::default()
        };
        let (blind, blind_log) = run(Some(barrier_only));
        let blind_log = blind_log.unwrap();
        assert_eq!(blind_log.applied(), 0, "events: {:?}", blind_log.events);
        assert_eq!(blind.jct, open.jct, "no intervention must mean open-loop");

        // The armed watchdog cuts the overrunning final stage, refits the
        // model from the observed big-gang latency, and re-plans the
        // residual onto an allocation the contention doesn't punish.
        let (cut, cut_log) = run(Some(ControllerConfig::default()));
        let cut_log = cut_log.unwrap();
        let wd: Vec<_> = cut_log
            .events
            .iter()
            .filter(|e| e.trigger == ReplanTrigger::Watchdog)
            .collect();
        assert!(!wd.is_empty(), "watchdog never fired: {:?}", cut_log.events);
        assert!(
            wd.iter().any(|e| e.applied),
            "watchdog re-plan was never applied: {wd:?}"
        );
        assert!(
            !cut_log.refits.is_empty(),
            "the big-gang observation must produce a refit"
        );
        let refit = cut_log.refits.last().unwrap();
        assert!(
            refit.comm_factor > refit.compute_factor,
            "contention is communication-bound: α={} β={}",
            refit.compute_factor,
            refit.comm_factor
        );
        assert!(
            cut.jct < open.jct,
            "watchdog {} !< open {}",
            cut.jct,
            open.jct
        );
        assert_eq!(cut.best_accuracy, open.best_accuracy);
    }

    #[test]
    fn zone_outage_executed_switch_beats_the_advisory_controller() {
        use rb_cloud::{FaultPlan, ZonePlan, ZoneWindow};
        use rb_exec::RetryPolicy;
        let task = resnet101_cifar10();
        // Scale-ups at stages 2 and 3 keep asking the (dead) home zone
        // for capacity.
        let plan = AllocationPlan::new(vec![4, 4, 8, 16]);
        let faults = FaultPlan {
            zones: ZonePlan {
                zones: 2,
                outage: Some(ZoneWindow {
                    zone: 0,
                    start_secs: 60.0,
                    duration_secs: 100_000.0,
                }),
                ..ZonePlan::none()
            },
            ..FaultPlan::none()
        };
        let mk_exec = || {
            Executor::new(
                spec(),
                plan.clone(),
                task.clone(),
                physics(&task, 1.0),
                cloud(),
            )
            .unwrap()
            .with_options(ExecOptions {
                seed: 11,
                faults: faults.clone(),
                retry: Some(RetryPolicy {
                    max_retries: 6,
                    base_backoff_secs: 120.0,
                    max_backoff_secs: 240.0,
                    request_timeout_secs: 480.0,
                }),
                ..ExecOptions::default()
            })
        };
        let deadline = SimDuration::from_secs(27 * 60);
        let run = |execute: bool| {
            // Market comparison off: this test isolates the zone
            // behavior (the probe test below covers market flips).
            let config = ControllerConfig {
                watchdog: WatchdogConfig {
                    enabled: false,
                    ..WatchdogConfig::default()
                },
                market: MarketConfig {
                    enabled: false,
                    execute,
                    ..MarketConfig::default()
                },
                ..ControllerConfig::default()
            };
            let sim = Simulator::new(physics(&task, 1.0), cloud());
            let mut ctrl =
                AdaptiveController::new(sim, spec(), &plan, deadline, config).unwrap();
            let r = mk_exec().run_hooked(&configs(8, 3), &mut ctrl).unwrap();
            (r, ctrl.into_log())
        };
        let open = mk_exec().run(&configs(8, 3)).unwrap();
        let (_, advisory_log) = run(false);
        let (executed, executed_log) = run(true);
        // Both controllers saw the degraded zone; only execute mode
        // moved capacity out of it.
        for log in [&advisory_log, &executed_log] {
            assert!(
                log.events
                    .iter()
                    .any(|e| e.trigger == ReplanTrigger::ZoneDegraded),
                "{:?}",
                log.events
            );
        }
        assert_eq!(advisory_log.executed_switches(), 0);
        assert!(executed_log.executed_switches() >= 1);
        // Open loop re-enters the dead home zone at every scale-up and
        // pays the denial + backoff each time, blowing the deadline; the
        // executed zone move escapes the zone for good and recovers it.
        assert!(
            open.jct > deadline,
            "open loop was supposed to miss: {} ≤ {deadline}",
            open.jct
        );
        assert!(
            executed.jct <= deadline,
            "executed switch missed the deadline: {} > {deadline}",
            executed.jct
        );
        assert_eq!(executed.best_accuracy, open.best_accuracy);
    }

    #[test]
    fn market_probe_executes_a_switch_to_cheaper_spot_capacity() {
        let task = resnet101_cifar10();
        let plan = AllocationPlan::new(vec![8, 8, 8, 8]);
        let open = executor(&task, &plan, 1.0).run(&configs(8, 3)).unwrap();
        // Calm run, generous deadline: nothing triggers except the
        // execute-mode market probe, which finds spot feasible and far
        // cheaper and drains the fleet onto it.
        let config = ControllerConfig {
            drift: DriftConfig {
                replan_threshold: 100.0,
                replan_on_preemption: false,
                ..DriftConfig::default()
            },
            watchdog: WatchdogConfig {
                enabled: false,
                ..WatchdogConfig::default()
            },
            market: MarketConfig {
                execute: true,
                ..MarketConfig::default()
            },
            ..ControllerConfig::default()
        };
        let mut ctrl = controller(&plan, SimDuration::from_hours(4), config);
        let switched = executor(&task, &plan, 1.0)
            .run_hooked(&configs(8, 3), &mut ctrl)
            .unwrap();
        let log = ctrl.into_log();
        let first = log
            .events
            .iter()
            .find(|e| e.market_executed)
            .expect("the probe never executed a switch");
        assert_eq!(first.trigger, ReplanTrigger::MarketSwitch);
        assert_eq!(first.market, MarketChoice::Spot);
        assert!(first.market_switched);
        // Once on spot, the probe stops re-advising the same move: the
        // planning view followed the executed market.
        assert_eq!(
            log.events
                .iter()
                .filter(|e| e.trigger == ReplanTrigger::MarketSwitch && e.market_executed)
                .count(),
            1,
            "{:?}",
            log.events
        );
        // The residual ran at the spot discount: cheaper than open loop
        // even after paying the drain + re-provision cycle.
        assert!(
            switched.compute_cost < open.compute_cost,
            "switched {} !< open {}",
            switched.compute_cost,
            open.compute_cost
        );
        assert_eq!(switched.best_accuracy, open.best_accuracy);
    }

    #[test]
    fn adaptive_execution_is_deterministic_per_seed() {
        let task = resnet101_cifar10();
        let plan = AllocationPlan::new(vec![8, 8, 8, 8]);
        let run = || {
            let mut ctrl = controller(
                &plan,
                SimDuration::from_secs(1200),
                ControllerConfig::default(),
            );
            let r = executor(&task, &plan, 1.5)
                .run_hooked(&configs(8, 3), &mut ctrl)
                .unwrap();
            (r, ctrl.into_log())
        };
        let (a, la) = run();
        let (b, lb) = run();
        assert_eq!(a.jct, b.jct);
        assert_eq!(a.compute_cost, b.compute_cost);
        assert_eq!(la.events.len(), lb.events.len());
        for (x, y) in la.events.iter().zip(&lb.events) {
            assert_eq!(x.new_suffix, y.new_suffix);
            assert_eq!(x.drift_factor, y.drift_factor);
        }
    }
}
