//! The admission controller and fair-share scheduler.
//!
//! ## The discrete-event loop
//!
//! Every running job is an [`ExecutorCore`] whose clock advances one
//! stage per [`ExecutorCore::step`]. The service's loop is a classic
//! min-time event loop over those clocks:
//!
//! 1. **Admit** every pending arrival due at or before the next step
//!    (rejecting over-queue and over-budget arrivals with a typed
//!    reason);
//! 2. **Dispatch** queued jobs into free slots in fair-share order —
//!    the queued job whose tenant has the lowest spend ÷ weight ratio
//!    wins; ties break by arrival time, then submission index;
//! 3. **Step** the running core with the *smallest* virtual clock
//!    (ties again by submission index), so cross-job event order is a
//!    deterministic function of the jobs alone.
//!
//! Because each executor derives every noise stream from its own seed,
//! interleaving does not perturb individual runs: a job executed
//! through the service produces the same training timeline it would
//! produce alone (shifted to its dispatch time). Only the *shared*
//! resources — the queue and the optional instance pool — couple jobs,
//! and both are driven by the deterministic loop order above.
//!
//! ## The shared pool
//!
//! With [`ServeOptions::pool`] set, the service builds one
//! [`InstancePool`] (priced from the first job's cloud profile) and
//! attaches it to every core. Instances a job would terminate at a
//! barrier are parked; a job that scales up adopts them for a 2 s
//! handoff instead of a ~30 s provision + init + ingress, and the
//! donor's minimum-charge premium is credited back at the service
//! level (see [`crate::ServeReport::net_cost`]). Park time past
//! `max_hold_secs` is billed to the pool and the instance expires.
//!
//! ## Contention
//!
//! With `max_concurrent > 1`, two or more running jobs race for the
//! same parked instances at interleaved barriers. Acquisition order is
//! still deterministic: when several cores' clocks tie, the service
//! steps the one whose tenant has the lowest spend ÷ weight fair
//! share (ties by arrival time, then submission index) — the same
//! tie-break dispatch uses — so the under-served tenant's job reaches
//! the pool first. The pool's ledger stays exact under any
//! interleaving: `offered = adopted + expired + drained (+ parked)`
//! and `billed = job meters + park` ([`rb_cloud::PoolStats::balances`]
//! is debug-asserted after the drain).
//!
//! ## Pool-aware admission
//!
//! With [`ServeOptions::pool_admission`] set, a queued job whose
//! first-stage instance demand fits entirely inside currently-parked
//! (eligible, unexpired) pool capacity is dispatched *past*
//! `max_concurrent`: its whole first stage will be served warm, so the
//! marginal cost of running it now — against capacity that is
//! otherwise billing park time toward expiry — beats holding it in
//! the queue. Each such dispatch emits a `job.admit_from_pool` event
//! and bumps the `serve.pool_admits` counter
//! ([`crate::ServeReport::pool_admits`]).

use crate::report::{percentile, JobOutcome, RejectReason, RejectedJob, ServeReport, TenantUsage};
use crate::tenant::{JobRequest, TenantSpec};
use rb_cloud::{InstancePool, PoolConfig, SharedPool};
use rb_core::{Cost, RbError, Result, SimDuration, SimTime};
use rb_exec::{ExecutorCore, NoopHook, StepOutcome};
use rb_obs::{JobScopedRecorder, Lane, Recorder, RecorderHandle};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Service-level knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Jobs allowed to run concurrently (≥ 1).
    pub max_concurrent: usize,
    /// Arrivals allowed to wait in the queue; the next arrival past
    /// this is rejected with [`RejectReason::QueueFull`].
    pub max_queue: usize,
    /// Shared elastic instance pool; `None` disables handoffs (every
    /// job terminates its own capacity, exactly as when run alone).
    pub pool: Option<PoolConfig>,
    /// Admit a queued job past `max_concurrent` when its first-stage
    /// instance demand can be served entirely from parked pool
    /// capacity (skipping provision + init). Requires `pool`.
    pub pool_admission: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_concurrent: 4,
            max_queue: 64,
            pool: None,
            pool_admission: false,
        }
    }
}

impl ServeOptions {
    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] when `max_concurrent` is zero
    /// (nothing could ever run) or the pool config is malformed (zero
    /// capacity, non-finite hold). Checked at service construction so a
    /// bad config fails loudly instead of silently starving every job.
    pub fn validate(&self) -> Result<()> {
        if self.max_concurrent == 0 {
            return Err(RbError::InvalidConfig(
                "serve: max_concurrent must be >= 1".into(),
            ));
        }
        if let Some(pool) = &self.pool {
            pool.validate()?;
        }
        if self.pool_admission && self.pool.is_none() {
            return Err(RbError::InvalidConfig(
                "serve: pool_admission requires a pool (there is no parked capacity to admit \
                 against without one)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Per-job bookkeeping that outlives the consumed [`JobRequest`].
#[derive(Clone, Copy)]
struct JobMeta {
    arrival: SimTime,
    tenant: usize,
    bracket: Option<u32>,
    /// Stage-0 instance demand, for pool-aware admission.
    first_stage_demand: u32,
}

/// The multi-tenant tuning service.
#[derive(Debug, Clone)]
pub struct TuningService {
    tenants: Vec<TenantSpec>,
    options: ServeOptions,
}

impl TuningService {
    /// Builds a service over a validated tenant list.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] when the tenant list is empty,
    /// any tenant fails [`TenantSpec::validate`] (zero/negative/non-finite
    /// weight, non-positive budget), or the options fail
    /// [`ServeOptions::validate`].
    pub fn new(tenants: Vec<TenantSpec>, options: ServeOptions) -> Result<Self> {
        if tenants.is_empty() {
            return Err(RbError::InvalidConfig(
                "serve: at least one tenant is required".into(),
            ));
        }
        for t in &tenants {
            t.validate()?;
        }
        options.validate()?;
        Ok(TuningService { tenants, options })
    }

    /// The tenant list.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// The service options.
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Runs a workload to completion without observability.
    ///
    /// # Errors
    ///
    /// As [`TuningService::run_with_recorder`].
    pub fn run(&self, jobs: Vec<JobRequest>) -> Result<ServeReport> {
        self.run_with_recorder(jobs, &RecorderHandle::noop())
    }

    /// Runs a workload to completion, reporting service events and each
    /// job's executor trace into `recorder` (jobs are lane-scoped via
    /// [`JobScopedRecorder`] so their timelines stay separable).
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] when a job names an unknown
    /// tenant, or propagates the failing executor's error.
    pub fn run_with_recorder(
        &self,
        jobs: Vec<JobRequest>,
        recorder: &RecorderHandle,
    ) -> Result<ServeReport> {
        for (i, job) in jobs.iter().enumerate() {
            if job.tenant >= self.tenants.len() {
                return Err(RbError::InvalidConfig(format!(
                    "serve: job {i} names tenant {} but only {} tenants exist",
                    job.tenant,
                    self.tenants.len()
                )));
            }
        }

        // One shared pool for the whole workload, priced from the first
        // job's cloud profile (pools only make sense across jobs renting
        // the same instance type; heterogeneous fleets would need one
        // pool per type).
        let pool = match (&self.options.pool, jobs.first()) {
            (Some(cfg), Some(first)) => Some(SharedPool::new(InstancePool::new(
                cfg.clone(),
                first.executor.cloud().pricing.clone(),
            )?)),
            _ => None,
        };

        let meta: Vec<JobMeta> = jobs
            .iter()
            .map(|j| JobMeta {
                arrival: j.arrival,
                tenant: j.tenant,
                bracket: j.bracket,
                first_stage_demand: j.executor.first_stage_instance_demand(),
            })
            .collect();
        let mut requests: Vec<Option<JobRequest>> = jobs.into_iter().map(Some).collect();

        // Arrival order: (arrival time, submission index).
        let mut pending: VecDeque<usize> = {
            let mut order: Vec<usize> = (0..requests.len()).collect();
            order.sort_by_key(|&i| (meta[i].arrival, i));
            order.into()
        };
        let mut queue: Vec<usize> = Vec::new();
        let mut running: BTreeMap<u64, ExecutorCore> = BTreeMap::new();
        let mut dispatched_at: Vec<SimTime> = vec![SimTime::ZERO; requests.len()];
        let mut pool_admitted: Vec<bool> = vec![false; requests.len()];
        let mut pool_admits: u64 = 0;
        let mut spend: Vec<Cost> = vec![Cost::ZERO; self.tenants.len()];
        let mut completed: Vec<usize> = vec![0; self.tenants.len()];
        let mut rejected_count: Vec<usize> = vec![0; self.tenants.len()];
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        let mut rejected: Vec<RejectedJob> = Vec::new();
        let mut clock = SimTime::ZERO;
        let mut last_finish = SimTime::ZERO;
        let mut hook = NoopHook;

        loop {
            // 1. Admission horizon: the next running step, else (queue
            // drained and idle) jump the clock to the next arrival.
            let next_step = running.iter().map(|(id, core)| (core.now(), *id)).min();
            let horizon = match next_step {
                Some((t, _)) => Some(t),
                None if !queue.is_empty() => Some(clock),
                None => pending.front().map(|&i| meta[i].arrival),
            };
            let Some(horizon) = horizon else { break };

            // 2. Admit every arrival due at or before the horizon.
            while let Some(&idx) = pending.front() {
                let arrival = meta[idx].arrival;
                if arrival > horizon {
                    break;
                }
                pending.pop_front();
                clock = clock.max(arrival);
                let tenant = meta[idx].tenant;
                let reason = if queue.len() >= self.options.max_queue {
                    Some(RejectReason::QueueFull)
                } else if self.tenants[tenant]
                    .budget
                    .is_some_and(|b| spend[tenant] >= b)
                {
                    Some(RejectReason::BudgetExhausted)
                } else {
                    None
                };
                match reason {
                    Some(reason) => {
                        rejected_count[tenant] += 1;
                        recorder.instant(
                            arrival,
                            "serve",
                            "job.reject",
                            Lane::Job(idx as u64),
                            vec![("tenant", tenant.into()), ("reason", reason.label().into())],
                        );
                        recorder.counter_add("serve", "jobs_rejected", 1);
                        rejected.push(RejectedJob {
                            job: idx as u64,
                            tenant,
                            arrival,
                            reason,
                        });
                    }
                    None => {
                        recorder.instant(
                            arrival,
                            "serve",
                            "job.submit",
                            Lane::Job(idx as u64),
                            vec![("tenant", tenant.into())],
                        );
                        queue.push(idx);
                    }
                }
            }

            // 3. Dispatch queued jobs into free slots, fair-share first.
            while running.len() < self.options.max_concurrent && !queue.is_empty() {
                let pick = self.pick_fair(&queue, &meta, &spend);
                let idx = queue.remove(pick);
                let req = requests[idx].take().expect("job dispatched twice");
                self.dispatch_one(
                    idx,
                    req,
                    clock,
                    recorder,
                    pool.as_ref(),
                    None,
                    &mut dispatched_at,
                    &mut running,
                )?;
            }

            // 3b. Pool-aware admission: with every slot busy, a queued
            // job whose entire first stage fits in parked (eligible,
            // unexpired) pool capacity dispatches anyway — it will run
            // warm off instances that are otherwise billing park time
            // toward expiry. Strictly in fair-share order: admission
            // stops at the first pick that does not fit, so this never
            // becomes a backfill path around the fair queue.
            if self.options.pool_admission && !queue.is_empty() {
                if let Some(pool) = &pool {
                    let mut eligible = pool.with(|p| p.eligible_count(clock));
                    while !queue.is_empty() && eligible > 0 {
                        let pick = self.pick_fair(&queue, &meta, &spend);
                        let demand = meta[queue[pick]].first_stage_demand as usize;
                        if demand == 0 || demand > eligible {
                            break;
                        }
                        let idx = queue.remove(pick);
                        let req = requests[idx].take().expect("job dispatched twice");
                        self.dispatch_one(
                            idx,
                            req,
                            clock,
                            recorder,
                            Some(pool),
                            Some((eligible, demand as u32)),
                            &mut dispatched_at,
                            &mut running,
                        )?;
                        pool_admitted[idx] = true;
                        pool_admits += 1;
                        eligible -= demand;
                    }
                }
            }

            // 4. Step the running core that is furthest behind. Among
            // clock ties the fair-share tie-break (spend ÷ weight,
            // then arrival, then submission index) decides — the same
            // order dispatch uses — so which contending job reaches
            // the shared pool first at an interleaved barrier is a
            // deterministic function of the workload, not of map
            // iteration order.
            let mut pick: Option<(SimTime, f64, SimTime, u64)> = None;
            for (id, core) in &running {
                let m = &meta[*id as usize];
                let share = spend[m.tenant].as_dollars() / self.tenants[m.tenant].weight;
                let key = (core.now(), share, m.arrival, *id);
                let better = match &pick {
                    None => true,
                    Some(best) => key
                        .0
                        .cmp(&best.0)
                        .then_with(|| key.1.total_cmp(&best.1))
                        .then_with(|| key.2.cmp(&best.2))
                        .then_with(|| key.3.cmp(&best.3))
                        .is_lt(),
                };
                if better {
                    pick = Some(key);
                }
            }
            let Some((t, _, _, id)) = pick else {
                // Nothing running: if nothing is waiting either, done.
                if pending.is_empty() && queue.is_empty() {
                    break;
                }
                continue;
            };
            clock = clock.max(t);
            let core = running.get_mut(&id).expect("picked a running core");
            if let StepOutcome::Finished { at } = core.step(t, &mut hook)? {
                let core = running.remove(&id).expect("finished core is running");
                let report = core.finish()?;
                clock = clock.max(at);
                last_finish = last_finish.max(at);
                let idx = id as usize;
                let tenant = meta[idx].tenant;
                let dispatched = dispatched_at[idx];
                spend[tenant] += report.total_cost();
                completed[tenant] += 1;
                recorder.instant(
                    at,
                    "serve",
                    "job.done",
                    Lane::Job(id),
                    vec![
                        ("tenant", tenant.into()),
                        ("cost_usd", report.total_cost().as_dollars().into()),
                        ("jct_s", report.jct.as_secs_f64().into()),
                    ],
                );
                recorder.counter_add("serve", "jobs_completed", 1);
                if let Some(b) = meta[idx].bracket {
                    // Bracket-tagged jobs form one tenant's Hyperband
                    // job group: give each bracket a lane-scoped span
                    // so the group reads as parallel lanes in a trace.
                    recorder.span(
                        dispatched,
                        at,
                        "serve",
                        "bracket",
                        Lane::Bracket(b),
                        vec![("job", idx.into()), ("tenant", tenant.into())],
                    );
                }
                outcomes.push(JobOutcome {
                    job: id,
                    tenant,
                    arrival: meta[idx].arrival,
                    dispatched,
                    finished: at,
                    queue_wait: dispatched.saturating_since(meta[idx].arrival),
                    pool_admitted: pool_admitted[idx],
                    report,
                });
            }
        }

        // Wind down the pool: anything still parked terminates now and
        // bills its park time. After the drain nothing is parked, so
        // the ledger must balance exactly: every offer was parked,
        // rejected, double-released, or conflicted; every park was
        // handed off, expired, or drained.
        let pool_stats = pool.map(|p| {
            p.with(|pool| {
                pool.drain(clock);
                let stats = pool.stats();
                debug_assert!(
                    stats.balances(0),
                    "pool ledger out of balance after drain: {stats:?}"
                );
                stats
            })
        });

        let job_cost: Cost = outcomes
            .iter()
            .fold(Cost::ZERO, |acc, o| acc + o.report.total_cost());
        let park = pool_stats.as_ref().map_or(Cost::ZERO, |s| s.park_cost);
        let saved = pool_stats
            .as_ref()
            .map_or(Cost::ZERO, |s| s.min_charge_saved);
        let billed_cost = job_cost + park;
        let mut waits_by_tenant: Vec<Vec<SimDuration>> = vec![Vec::new(); self.tenants.len()];
        for o in &outcomes {
            waits_by_tenant[o.tenant].push(o.queue_wait);
        }
        for w in &mut waits_by_tenant {
            w.sort_unstable();
        }
        let tenants = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| TenantUsage {
                name: t.name.clone(),
                weight: t.weight,
                budget: t.budget,
                completed: completed[i],
                rejected: rejected_count[i],
                spend: spend[i],
                wait_p50: percentile(&waits_by_tenant[i], 0.50),
                wait_p90: percentile(&waits_by_tenant[i], 0.90),
            })
            .collect();
        Ok(ServeReport {
            outcomes,
            rejected,
            tenants,
            pool: pool_stats,
            pool_admits,
            makespan: last_finish,
            billed_cost,
            net_cost: billed_cost - saved,
        })
    }

    /// Instantiates one job's executor core at `clock` (or its arrival,
    /// whichever is later), attaches the shared pool, emits the
    /// dispatch events, and registers the core as running. Used by both
    /// the normal slot-fill path and pool-aware admission (`from_pool`
    /// carries `(eligible parked count, first-stage demand)` for the
    /// admission event's fields).
    #[allow(clippy::too_many_arguments)]
    fn dispatch_one(
        &self,
        idx: usize,
        req: JobRequest,
        clock: SimTime,
        recorder: &RecorderHandle,
        pool: Option<&SharedPool>,
        from_pool: Option<(usize, u32)>,
        dispatched_at: &mut [SimTime],
        running: &mut BTreeMap<u64, ExecutorCore>,
    ) -> Result<()> {
        let start = clock.max(req.arrival);
        let job_id = idx as u64;
        let wait = start.saturating_since(req.arrival);
        let scoped: Arc<dyn Recorder> = Arc::new(JobScopedRecorder::new(recorder.share(), job_id));
        let mut core = ExecutorCore::new_at(
            &req.executor,
            &req.configs,
            RecorderHandle::new(scoped),
            start,
        )?;
        if let Some(pool) = pool {
            // Bracket-tagged jobs share a group keyed by tenant, so
            // barrier-released capacity prefers siblings of the same
            // Hyperband run before flowing cross-tenant.
            let group = req.bracket.map(|_| req.tenant as u64);
            core.attach_shared_pool(pool.clone(), job_id, group);
        }
        if !wait.is_zero() {
            recorder.span(
                req.arrival,
                start,
                "serve",
                "job.queued",
                Lane::Job(job_id),
                vec![("wait_s", wait.as_secs_f64().into())],
            );
        }
        recorder.instant(
            start,
            "serve",
            "job.dispatch",
            Lane::Job(job_id),
            vec![
                ("tenant", req.tenant.into()),
                ("wait_s", wait.as_secs_f64().into()),
            ],
        );
        if let Some((eligible, demand)) = from_pool {
            recorder.instant(
                start,
                "serve",
                "job.admit_from_pool",
                Lane::Job(job_id),
                vec![
                    ("tenant", req.tenant.into()),
                    ("first_stage_demand", (demand as usize).into()),
                    ("parked_eligible", eligible.into()),
                ],
            );
            recorder.counter_add("serve", "pool_admits", 1);
        }
        recorder.histogram("serve", "queue_wait_s", wait.as_secs_f64());
        dispatched_at[idx] = start;
        running.insert(job_id, core);
        Ok(())
    }

    /// The queued job that should dispatch next: lowest tenant
    /// spend ÷ weight, ties by arrival time, then submission index.
    /// Returns a position within `queue`.
    fn pick_fair(&self, queue: &[usize], meta: &[JobMeta], spend: &[Cost]) -> usize {
        let share = |idx: usize| {
            let t = meta[idx].tenant;
            spend[t].as_dollars() / self.tenants[t].weight
        };
        let mut best = 0;
        for pos in 1..queue.len() {
            let (a, b) = (queue[pos], queue[best]);
            let ord = share(a)
                .total_cmp(&share(b))
                .then(meta[a].arrival.cmp(&meta[b].arrival))
                .then(a.cmp(&b));
            if ord.is_lt() {
                best = pos;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tenant_list_is_a_typed_error() {
        let err = TuningService::new(Vec::new(), ServeOptions::default()).unwrap_err();
        assert!(matches!(err, RbError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn bad_tenant_weight_is_rejected_at_construction() {
        let err = TuningService::new(
            vec![TenantSpec::new("a", 1.0), TenantSpec::new("b", 0.0)],
            ServeOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RbError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn zero_concurrency_is_rejected() {
        let err = TuningService::new(
            vec![TenantSpec::new("a", 1.0)],
            ServeOptions {
                max_concurrent: 0,
                ..ServeOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RbError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn zero_capacity_pool_is_rejected() {
        let err = TuningService::new(
            vec![TenantSpec::new("a", 1.0)],
            ServeOptions {
                pool: Some(PoolConfig {
                    capacity: 0,
                    ..PoolConfig::default()
                }),
                ..ServeOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RbError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn empty_workload_yields_an_empty_report() {
        let svc =
            TuningService::new(vec![TenantSpec::new("a", 1.0)], ServeOptions::default()).unwrap();
        let report = svc.run(Vec::new()).unwrap();
        assert!(report.outcomes.is_empty());
        assert!(report.rejected.is_empty());
        assert_eq!(report.billed_cost, Cost::ZERO);
        assert_eq!(report.makespan, SimTime::ZERO);
        assert_eq!(report.tenants.len(), 1);
    }
}
